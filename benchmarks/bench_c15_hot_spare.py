"""C15 — Self-checking programming: "an acting component that fails is
discarded and replaced by the hot spare.  This way, self-checking
programming does not require any rollback mechanism, which is essential
with recovery blocks."

The same failing-primary workload runs through SCP (acting + hot spare,
parallel) and recovery blocks (primary + alternate, sequential with
rollback).  Reported: rollbacks performed, failure-time response latency
(virtual time to produce the result on a request whose primary fails),
and executions per request.  Shape: SCP performs zero rollbacks and its
failover adds no latency (the spare already ran); recovery blocks pay
rollback plus the alternate's re-execution.
"""

from repro.adjudicators.acceptance import PredicateAcceptanceTest
from repro.components.state import DictState
from repro.components.version import Version
from repro.environment import SimEnvironment
from repro.faults.development import Bohrbug, InputRegion
from repro.harness.report import render_table
from repro.techniques.recovery_blocks import RecoveryBlocks
from repro.techniques.self_checking import SelfCheckingProgramming

from _common import save_result

EXEC_COST = 4.0


def oracle(x):
    return x + 9


def _versions():
    primary = Version("primary", impl=oracle, exec_cost=EXEC_COST,
                      faults=[Bohrbug("p-bug",
                                      region=InputRegion(0, 10 ** 9))])
    spare = Version("spare", impl=oracle, exec_cost=EXEC_COST)
    return primary, spare


def _acceptance():
    return PredicateAcceptanceTest(lambda args, v: v == oracle(args[0]))


def _experiment():
    # SCP: acting fails its check, the hot spare's result is selected.
    scp_env = SimEnvironment()
    scp = SelfCheckingProgramming.with_acceptance_tests(list(_versions()),
                                                        _acceptance())
    scp_value = scp.execute(3, env=scp_env)
    scp_latency = scp_env.clock.now

    # Recovery blocks: primary fails, rollback, alternate re-executes.
    rb_env = SimEnvironment()
    state = DictState(journal=[])
    rb = RecoveryBlocks(list(_versions()), _acceptance(), subject=state)
    rb_value = rb.execute(3, env=rb_env)
    rb_latency = rb_env.clock.now

    rows = [
        ("self-checking (hot spare)", scp_value, scp_latency,
         scp.stats.rollbacks, scp.stats.executions),
        ("recovery blocks", rb_value, rb_latency,
         rb.stats.rollbacks, rb.stats.executions),
    ]
    table = render_table(
        ("technique", "result", "failure-time latency", "rollbacks",
         "executions"),
        rows,
        title=f"C15: hot-spare failover vs rollback recovery "
              f"(version cost {EXEC_COST})")
    return {"scp": (scp_value, scp_latency, scp.stats),
            "rb": (rb_value, rb_latency, rb.stats)}, table


def test_c15_hot_spare_avoids_rollback(benchmark):
    results, table = benchmark(_experiment)
    save_result("C15_hot_spare", table)

    scp_value, scp_latency, scp_stats = results["scp"]
    rb_value, rb_latency, rb_stats = results["rb"]

    assert scp_value == rb_value == oracle(3)
    # SCP needs no rollback machinery at all.
    assert scp_stats.rollbacks == 0
    assert rb_stats.rollbacks == 1
    # Hot-spare failover is latency-free: the spare ran in parallel, so
    # the request finishes in one (parallel) execution round...
    assert scp_latency == EXEC_COST
    # ...while recovery blocks pay the primary AND the alternate in
    # sequence on the failing path.
    assert rb_latency == 2 * EXEC_COST
    assert scp_latency < rb_latency
