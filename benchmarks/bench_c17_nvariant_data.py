"""C17 — Nguyen-Tuong et al.: N-variant data — "attackers would need to
alter the corresponding data in each variant in a different way while
sending the same inputs to all variants".

A key-value workload mixes legitimate operations with data-corruption
attacks (the attacker overwrites concrete storage with one value — the
same payload lands everywhere — or compromises a single variant).
Reported per variant count: attack detection rate and false-positive
rate on legitimate traffic.  Shape: 100% detection, 0% false positives,
independent of N >= 2.
"""

import random

from repro.exceptions import AttackDetectedError
from repro.harness.report import render_table
from repro.techniques.data_diversity_security import (
    NVariantDataStore,
    default_encodings,
)

from _common import save_result

OPERATIONS = 200
ATTACK_FRACTION = 0.25


def _run(n_variants, seed):
    rng = random.Random(seed)
    store = NVariantDataStore(default_encodings(n_variants, seed=seed))
    detected = missed = false_positives = attacks = legit_reads = 0
    live_keys = []
    for i in range(OPERATIONS):
        if live_keys and rng.random() < ATTACK_FRACTION:
            attacks += 1
            key = rng.choice(live_keys)
            if rng.random() < 0.5:
                store.tamper_raw(key, rng.randrange(2 ** 30))
            else:
                store.tamper_raw(key, rng.randrange(2 ** 30),
                                 variant=rng.randrange(n_variants))
            try:
                store.get(key)
                missed += 1
            except AttackDetectedError:
                detected += 1
            # Repair the key so later legitimate reads are meaningful.
            store.put(key, rng.randrange(1000))
        else:
            key = f"k{rng.randrange(30)}"
            value = rng.randrange(1000)
            store.put(key, value)
            if key not in live_keys:
                live_keys.append(key)
            legit_reads += 1
            try:
                if store.get(key) != value:
                    false_positives += 1  # wrong value = broken store
            except AttackDetectedError:
                false_positives += 1
    return {
        "attacks": attacks,
        "detected": detected,
        "missed": missed,
        "false_positives": false_positives,
        "legit_reads": legit_reads,
    }


def _experiment():
    rows = []
    outcomes = {}
    for n in (2, 3, 5):
        result = _run(n, seed=41 + n)
        outcomes[n] = result
        detection = (result["detected"] / result["attacks"]
                     if result["attacks"] else 1.0)
        fp_rate = result["false_positives"] / result["legit_reads"]
        rows.append((n, result["attacks"], f"{detection:.0%}",
                     f"{fp_rate:.0%}"))
    table = render_table(
        ("variants", "corruption attacks", "detection rate",
         "false-positive rate"),
        rows,
        title=f"C17: N-variant data store under corruption attacks "
              f"({OPERATIONS} operations)")
    return outcomes, table


def test_c17_nvariant_data_detects_corruption(benchmark):
    outcomes, table = benchmark(_experiment)
    save_result("C17_nvariant_data", table)

    for n, result in outcomes.items():
        assert result["attacks"] > 10
        assert result["missed"] == 0, n
        assert result["detected"] == result["attacks"], n
        assert result["false_positives"] == 0, n
