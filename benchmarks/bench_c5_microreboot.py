"""C5 — Candea et al.: "local micro-reboots ... avoid the high cost of
complete reboots".

A three-component application serves a request stream; one component
crashes with a transient (Heisenbug) fault.  Recovery by micro-reboot
(restart the crashed component only) is compared with recovery by full
reboot (restart every component plus the shared environment).  Measured:
downtime per recovery, total virtual time, and state preserved in the
*untouched* components.
"""

from repro.components.component import RestartableComponent
from repro.environment import SimEnvironment
from repro.faults.development import Heisenbug
from repro.harness.report import render_table
from repro.techniques.microreboot import MicroReboot, ModularApplication

from _common import save_result

REQUESTS = 300
CRASH_P = 0.08


def _build_app():
    def handler(component, request, env):
        served = component.state.data.get("served", 0) + 1
        component.state["served"] = served
        return served

    cart = RestartableComponent(
        "cart", handler, initializer=lambda: {"served": 0},
        faults=[Heisenbug("cart-crash", probability=CRASH_P)],
        restart_cost=SimEnvironment.MICRO_REBOOT_COST)
    catalog = RestartableComponent(
        "catalog", handler, initializer=lambda: {"served": 0},
        restart_cost=SimEnvironment.MICRO_REBOOT_COST)
    sessions = RestartableComponent(
        "sessions", handler, initializer=lambda: {"served": 0},
        restart_cost=SimEnvironment.MICRO_REBOOT_COST)
    return ModularApplication([cart, catalog, sessions])


def _run(scope, seed):
    env = SimEnvironment(seed=seed)
    app = _build_app()
    manager = MicroReboot(app, env=env, scope=scope)
    for i in range(REQUESTS):
        manager.handle("cart", i)
        manager.handle("catalog", i)
    catalog_state = app.components["catalog"].state.data["served"]
    return {
        "reboots": manager.stats.reboots,
        "downtime_per_recovery": (manager.stats.downtime
                                  / max(1, manager.stats.reboots)),
        "total_time": env.clock.now,
        "catalog_state_preserved": catalog_state == REQUESTS,
        "catalog_restarts": app.components["catalog"].restarts,
    }


def _experiment():
    seeds = (1, 2, 3)
    rows = []
    summary = {}
    for scope in ("micro", "full"):
        runs = [_run(scope, s) for s in seeds]
        mean = {k: sum(r[k] for r in runs) / len(runs)
                for k in ("reboots", "downtime_per_recovery", "total_time",
                          "catalog_restarts")}
        mean["state_preserved"] = all(r["catalog_state_preserved"]
                                      for r in runs)
        summary[scope] = mean
        rows.append((scope, round(mean["reboots"], 1),
                     round(mean["downtime_per_recovery"], 1),
                     round(mean["total_time"], 1),
                     round(mean["catalog_restarts"], 1),
                     mean["state_preserved"]))
    table = render_table(
        ("recovery scope", "recoveries", "downtime/recovery",
         "total virtual time", "catalog restarts",
         "catalog state preserved"),
        rows,
        title=f"C5: micro-reboot vs full reboot "
              f"({REQUESTS} requests/component, crash p={CRASH_P})")
    return summary, table


def test_c5_microreboot_beats_full_reboot(benchmark):
    summary, table = benchmark(_experiment)
    save_result("C5_microreboot", table)

    micro, full = summary["micro"], summary["full"]
    # Both recover the same fault pattern...
    assert micro["reboots"] > 0 and full["reboots"] > 0
    # ...but a micro-reboot's downtime is an order of magnitude smaller.
    assert (micro["downtime_per_recovery"] * 10
            < full["downtime_per_recovery"])
    assert micro["total_time"] < full["total_time"]
    # Micro-reboots leave healthy components (and their state) untouched.
    assert micro["state_preserved"]
    assert micro["catalog_restarts"] == 0
    assert not full["state_preserved"]
    assert full["catalog_restarts"] > 0
