"""Observe overhead: per-site cost of the telemetry hot paths.

Every instrumentation site in the framework follows the same shape —
resolve the session (``observe.current()``), check ``enabled``, and
only then do telemetry work — so the cost of *having* the observe
subsystem is the cost of that disabled-path check, and the cost of
*using* it is the per-site enabled work (counter bump, event publish,
span open/close).  This benchmark times both paths per site and writes
the timings to the ``"sites"`` section of ``BENCH_observe.json`` —
schema-versioned, with host metadata and iteration counts, so a
timing swing between hosts is attributable (the bare-number era could
not tell a 113→307 ns host change from a regression).

Drift detection: the disabled-path ns/site is asserted against a
pinned budget.  The budget is a generous ceiling (~6x the fastest
host observed) — it tolerates host variance but catches the failure
mode that matters, the disabled check silently growing real work.

The saved results table carries only deterministic facts (counter
exactness, snapshot round-trip fidelity, the allocation-free verdict)
so table-level drift detection stays meaningful.
"""

import time
import tracemalloc

from repro import observe
from repro.harness.report import render_table

from _common import save_result, update_bench_json

N = 20_000

#: Retained-bytes budget for the disabled resolve-and-check path: it
#: must not build anything at all (same contract as H1's 512 bytes for
#: the two counter cells it actually owns).
ALLOCATION_BUDGET = 512

#: Pinned ceiling for the disabled resolve-and-check path, ns/site.
#: Observed floors: ~113 ns (fast host) to ~307 ns (CI container); the
#: ceiling is deliberately generous so it trips on a real regression
#: (the check growing allocations or lock traffic), not host noise.
DISABLED_BUDGET_NS = 2000.0


def _time_disabled_checks(n):
    start = time.perf_counter()
    for _ in range(n):
        tel = observe.current()
        if tel.enabled:  # pragma: no cover - disabled in this phase
            tel.count("bench_total")
    return time.perf_counter() - start


def _net_disabled_allocation(n):
    """Bytes retained after ``n`` disabled resolve-and-check rounds."""
    observe.current()  # warm the import/lookup machinery first
    tracemalloc.start()
    for _ in range(n):
        tel = observe.current()
        if tel.enabled:  # pragma: no cover - disabled in this phase
            tel.count("bench_total")
    net, _peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return net


def _time_enabled_sites(n):
    """Per-site seconds for counter / publish / span with a session."""
    timings = {}
    with observe.session() as tel:
        start = time.perf_counter()
        for _ in range(n):
            tel.count("bench_total")
        timings["counter"] = time.perf_counter() - start
        start = time.perf_counter()
        for i in range(n):
            tel.publish("bench.event", i=i)
        timings["publish"] = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(n):
            with tel.span("bench.span", cost=1.0):
                pass
        timings["span"] = time.perf_counter() - start
        counter_exact = tel.metrics.value("bench_total") == n
        published_exact = tel.bus.published == n
        snapshot = tel.snapshot()
    with observe.session() as merged:
        merged.merge(snapshot)
        roundtrip_exact = (
            merged.metrics.value("bench_total") == n
            and merged.bus.published == n
            and merged.tracer.started == snapshot["spans"]["started"])
    return timings, counter_exact, published_exact, roundtrip_exact


def _experiment():
    disabled_seconds = _time_disabled_checks(N)
    net = _net_disabled_allocation(2_000)
    timings, counter_exact, published_exact, roundtrip_exact = \
        _time_enabled_sites(N)

    disabled_ns = disabled_seconds / N * 1e9
    rows = [
        ("disabled check", N, True, net < ALLOCATION_BUDGET),
        ("enabled counter", N, counter_exact, "n/a"),
        ("enabled publish", N, published_exact, "n/a"),
        ("snapshot/merge round trip", N, roundtrip_exact, "n/a"),
    ]
    table = render_table(
        ("site", "iterations", "exact", "allocation-free"),
        rows, title="observe: per-site instrumentation overhead")
    section = {
        "iterations": N,
        "disabled_ns_per_site": disabled_ns,
        "disabled_budget_ns_per_site": DISABLED_BUDGET_NS,
        **{f"enabled_{site}_ns_per_site": seconds / N * 1e9
           for site, seconds in sorted(timings.items())},
    }
    return rows, section, net, disabled_ns, table


def test_observe_overhead_disabled_path_is_allocation_free(benchmark):
    rows, section, net, disabled_ns, table = benchmark(_experiment)
    save_result("OBS_overhead", table)
    update_bench_json("sites", section)
    print(" ".join(f"{key}={value:.0f}" for key, value in section.items()
                   if key.endswith("_ns_per_site")))

    assert net < ALLOCATION_BUDGET, \
        f"disabled observe path retained {net} bytes"
    assert disabled_ns < DISABLED_BUDGET_NS, \
        (f"disabled observe path drifted to {disabled_ns:.0f} ns/site "
         f"(budget {DISABLED_BUDGET_NS:.0f})")
    for _site, _n, exact, _alloc in rows:
        assert exact
