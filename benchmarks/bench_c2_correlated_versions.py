"""C2 — Brilliant/Knight/Leveson: correlated faults erode the N-version
reliability gain ("the correlation is higher than predicted, thus
reducing the expected reliability gain").

Version populations share a common-shock failure component with pairwise
correlation rho; we measure 5-version majority-vote reliability across
rho and overlay the closed form.  The paper's shape: at rho=0 the vote
is far better than a single version; as rho grows the gain collapses
towards (and at rho=1 equals) the single-version reliability.
"""

import pytest

from repro.analysis.reliability import (
    correlated_vote_reliability,
    vote_reliability,
)
from repro.components.library import correlated_version_population
from repro.exceptions import NoMajorityError
from repro.harness.report import render_table
from repro.techniques.nvp import NVersionProgramming

from _common import save_result

P_FAIL = 0.15
N = 5
TRIALS = 1500


def _measured_reliability(rho, seed=0):
    versions = correlated_version_population(
        lambda x: x * 3, N, P_FAIL, rho, seed=seed)
    nvp = NVersionProgramming(versions)
    ok = 0
    for x in range(TRIALS):
        try:
            ok += nvp.execute(x) == x * 3
        except NoMajorityError:
            pass
    return ok / TRIALS


def _experiment():
    single = 1 - P_FAIL
    rows = []
    for rho in (0.0, 0.2, 0.4, 0.6, 0.8):
        measured = _measured_reliability(rho)
        predicted = correlated_vote_reliability(N, P_FAIL, rho)
        gain = measured - single
        rows.append((rho, round(predicted, 4), round(measured, 4),
                     round(gain, 4)))
    table = render_table(
        ("rho", "analytic", "measured", "gain vs single version"),
        rows,
        title=f"C2: {N}-version vote reliability vs failure correlation "
              f"(p={P_FAIL}, single version = {single:.2f})")
    return rows, table


def test_c2_correlation_erodes_nvp_gain(benchmark):
    rows, table = benchmark(_experiment)
    save_result("C2_correlated_versions", table)

    single = 1 - P_FAIL
    measured = {rho: m for rho, _, m, _ in rows}

    # Measured tracks the common-shock closed form.
    for rho, predicted, m, _ in rows:
        assert m == pytest.approx(predicted, abs=0.04)

    # Shape: the gain shrinks monotonically with correlation...
    series = [m for _, _, m, _ in rows]
    assert series == sorted(series, reverse=True)
    # ...is large for independent versions...
    assert measured[0.0] - single > 0.05
    # ...and at rho=0.8 most of it is gone (less than a third remains).
    assert (measured[0.8] - single) < (measured[0.0] - single) / 3
