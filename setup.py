"""Setup shim.

Kept alongside pyproject.toml so that ``pip install -e .`` works on
offline hosts without the ``wheel`` package (legacy ``setup.py develop``
path via ``--no-use-pep517``).
"""

from setuptools import setup

setup()
