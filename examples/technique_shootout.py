#!/usr/bin/env python3
"""A technique-vs-fault-class shootout.

Runs a fault-injection campaign: four redundancy mechanisms (plus the
unprotected baseline) against four fault classes, printing the correct-
result matrix.  The matrix is the executable version of the paper's
Table 2 "Faults" column — each technique shines exactly where its row
says it should.

Run:  python examples/technique_shootout.py
"""

from repro.adjudicators import PredicateAcceptanceTest
from repro.components.library import diverse_versions
from repro.faults import Bohrbug, Heisenbug, InputRegion, OverflowBug
from repro.faults.environmental import LoadBug
from repro.harness import FaultCampaign
from repro.techniques import (
    EnvironmentPerturbation,
    NVersionProgramming,
    RecoveryBlocks,
)


def oracle(x):
    return x + 1


def nvp_protector(faulty, env):
    """NVP: the injected faulty function joins two healthy versions."""
    from repro.components.version import Version
    healthy = diverse_versions(oracle, 2, 0.0, seed=1)
    injected = Version("injected", impl=lambda x: faulty(x, env=env))
    nvp = NVersionProgramming([injected, *healthy])
    return lambda x: nvp.execute(x, env=env)


def recovery_blocks_protector(faulty, env):
    """The faulty function as primary, one healthy alternate."""
    from repro.components.version import Version
    primary = Version("primary", impl=lambda x: faulty(x, env=env))
    alternate = Version("alternate", impl=oracle)
    rb = RecoveryBlocks(
        [primary, alternate],
        PredicateAcceptanceTest(lambda args, v: v == oracle(args[0])))
    return lambda x: rb.execute(x)


def rx_protector(faulty, env):
    """RX: rollback + environment perturbation around the faulty call."""
    rx = EnvironmentPerturbation(
        lambda x, env=None: faulty(x, env=env), env)
    return rx.execute


def retry_protector(faulty, env):
    """Plain bounded re-execution (checkpoint-recovery's core move)."""
    def protected(x):
        last = None
        for _ in range(5):
            try:
                return faulty(x, env=env)
            except Exception as exc:
                last = exc
        raise last
    return protected


def main():
    campaign = FaultCampaign(
        protectors={
            "N-version (3)": nvp_protector,
            "recovery blocks": recovery_blocks_protector,
            "RX perturbation": rx_protector,
            "retry x5": retry_protector,
        },
        faults={
            "Bohrbug": lambda: Bohrbug(
                "b", region=InputRegion(0, 10 ** 9)),
            "Heisenbug": lambda: Heisenbug("h", probability=0.5),
            "overflow": lambda: OverflowBug("o", overflow_cells=4,
                                            trigger_modulo=1),
            "load": lambda: LoadBug("l", probability=0.9),
        },
        oracle=oracle,
        requests=120,
        seed=7,
    )
    print(campaign.render(
        title="correct-result rate: technique x fault class"))
    print()
    matrix = campaign.matrix()
    naked_bohr = matrix[("unprotected", "Bohrbug")].correct_rate
    nvp_bohr = matrix[("N-version (3)", "Bohrbug")].correct_rate
    rx_load = matrix[("RX perturbation", "load")].correct_rate
    retry_bohr = matrix[("retry x5", "Bohrbug")].correct_rate
    print("readings:")
    print(f"  deterministic Bohrbugs defeat retrying ({retry_bohr:.0%}) "
          f"but not diverse code ({nvp_bohr:.0%}).")
    print(f"  environment-sensitive faults need environment change: "
          f"RX turns {matrix[('unprotected', 'load')].correct_rate:.0%} "
          f"into {rx_load:.0%}.")
    assert nvp_bohr > naked_bohr
    assert rx_load > 0.9


if __name__ == "__main__":
    main()
