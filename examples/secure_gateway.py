#!/usr/bin/env python3
"""A hardened request gateway: security through redundancy.

Combines the paper's three security-oriented mechanisms in one service
front-end handling a mixed benign/malicious workload:

* process replicas (Cox et al.'s N-variant systems) — each request runs
  on two automatically diversified process variants; memory attacks
  cannot be valid in both, so divergence stops them;
* healer wrappers (Fetzer & Xiao) — every heap write the gateway itself
  performs is bounds-checked, so oversized payloads cannot smash
  adjacent buffers;
* N-variant data (Nguyen-Tuong et al.) — the session token store keeps
  every value under multiple encodings; direct data-corruption attacks
  are detected on the next read.

Run:  python examples/secure_gateway.py
"""

from repro import AttackDetectedError, NVariantDataStore, SimEnvironment
from repro.environment.memory import SimulatedHeap
from repro.faults.malicious import AttackPayload
from repro.harness.workload import attack_mix
from repro.techniques import HealerWrapper, ProcessReplicas


def main():
    replicas = ProcessReplicas(variants=2, tagging=True)
    heap = SimulatedHeap(capacity=8192)
    healer = HealerWrapper(heap, mode="truncate")
    tokens = NVariantDataStore()

    served = attacks_stopped = corruption_alarms = 0
    workload = attack_mix(benign=80, attacks=20, seed=13)

    for i, request in enumerate(workload):
        # 1. run the request through the replicated service
        try:
            value = replicas.serve(request)
        except AttackDetectedError:
            attacks_stopped += 1
            continue

        # 2. log the response into a fixed-size buffer, guarded writes
        log_block = heap.alloc(4, owner="request-log")
        healer.write_buffer(log_block, [value] * (i % 7))
        heap.free(log_block)

        # 3. stash a session token under N-variant encodings
        tokens.put(f"session-{i}", value)
        served += 1

    # A direct data-corruption attack against the token store: the
    # attacker overwrites raw storage with one concrete value.
    victim = f"session-0"
    tokens.tamper_raw(victim, 0xBADF00D)
    try:
        tokens.get(victim)
    except AttackDetectedError:
        corruption_alarms += 1

    benign = sum(1 for r in workload if not isinstance(r, AttackPayload))
    attacks = len(workload) - benign
    print("secure gateway report\n")
    print(f"  benign requests served       {served}/{benign}")
    print(f"  memory attacks stopped       {attacks_stopped}/{attacks}")
    print(f"  overflow writes contained    "
          f"{healer.stats.prevented_overflows} "
          f"(heap smashes: {heap.smash_count})")
    print(f"  token-store corruptions      {corruption_alarms} detected")
    assert served == benign
    assert attacks_stopped == attacks
    assert heap.smash_count == 0
    assert corruption_alarms == 1


if __name__ == "__main__":
    main()
