#!/usr/bin/env python3
"""Quickstart: making a faulty computation reliable with redundancy.

Builds a deliberately faulty 'scientific library' version population and
wraps it three ways — N-version programming (parallel evaluation +
voting), recovery blocks (sequential alternatives + acceptance test),
and data diversity (retry on re-expressed inputs) — then compares their
delivered reliability against the unprotected version.

Run:  python examples/quickstart.py
"""

from repro import (
    DataDiversity,
    NVersionProgramming,
    PredicateAcceptanceTest,
    RecoveryBlocks,
    RedundancyError,
    SimulatedFailure,
    Version,
    diverse_versions,
)
from repro.faults import Bohrbug, InputRegion
from repro.techniques.data_diversity import shift_reexpression

PERIOD = 360


def sine_table(x):
    """The 'specified' computation: a periodic integer function."""
    return (x % PERIOD) ** 2 % 1013


def measure(label, compute):
    """Run 2000 inputs through ``compute`` and report reliability."""
    ok = 0
    for x in range(2000):
        try:
            ok += compute(x) == sine_table(x)
        except (SimulatedFailure, RedundancyError):
            pass
    print(f"  {label:<38} {ok / 2000:7.2%}")
    return ok / 2000


def main():
    print("Quickstart: handling software faults with redundancy\n")

    # Five independently developed versions, each failing on ~8% of its
    # own pseudo-random input subset (development faults / Bohrbugs).
    versions = diverse_versions(sine_table, n=5, failure_probability=0.08,
                                seed=2024)

    print("reliability over 2000 requests:")
    measure("single version (unprotected)",
            lambda x: versions[0].execute(x))

    # --- N-version programming: run all five, majority vote. ---------
    nvp = NVersionProgramming(versions)
    measure("N-version programming (5 versions)", nvp.execute)

    # --- Recovery blocks: primary + alternates + acceptance test. ----
    rb = RecoveryBlocks(
        diverse_versions(sine_table, n=3, failure_probability=0.08,
                         seed=7),
        PredicateAcceptanceTest(lambda args, v: v == sine_table(args[0])))
    measure("recovery blocks (3 blocks)", rb.execute)

    # --- Data diversity: one version, re-expressed inputs. -----------
    program = Version(
        "periodic", impl=sine_table,
        faults=[Bohrbug("corner-case", region=InputRegion(100, 140))])
    dd = DataDiversity(program, [shift_reexpression(PERIOD, name="+T"),
                                 shift_reexpression(2 * PERIOD, name="+2T")])
    measure("data diversity (retry blocks)", dd.execute_retry)

    print("\ncost ledger of the NVP system:")
    report = nvp.cost_ledger().report("NVP")
    print(f"  design cost            {report.design_cost:.0f}")
    print(f"  executions per request {report.executions_per_request:.1f}")
    print("\n(Every request paid 5 executions — the price of masking "
          "failures\nwith an implicit adjudicator. See "
          "examples/survey_tables.py for the\nfull taxonomy.)")


if __name__ == "__main__":
    main()
