#!/usr/bin/env python3
"""A long-running computation in an aging environment.

The fault-tolerance classic behind rejuvenation (Huang/Wang/Garg):
a multi-day batch job leaks memory and races more as the process ages.
Three execution policies are compared on the same job:

1. checkpoints only — rollbacks absorb failures, but the aging hazard
   keeps climbing, so late segments thrash;
2. rejuvenate after every segment — the age never climbs, but the
   reinitialisation overhead is paid sixty times;
3. rejuvenate every 4 segments (Garg et al.'s tuned policy) — the
   interior optimum that minimises total completion time.

Run:  python examples/long_running_simulation.py
"""

from repro import SimEnvironment
from repro.analysis.aging_model import completion_time
from repro.faults import AgingBug, LeakFault
from repro.faults.injector import FaultyFunction
from repro.techniques.rejuvenation import CheckpointedExecution

SEGMENTS = 60
SEGMENT_WORK = 10.0


def make_segment(env):
    """One checkpointable segment: leaks a little, races when old."""
    leak = LeakFault("batch-leak", cells_per_call=2)
    race = AgingBug("stale-cache-race", max_probability=0.9,
                    age_to_saturation=400.0)
    task = FaultyFunction(lambda: None, faults=[leak, race],
                          cost=SEGMENT_WORK)
    return lambda e: task(env=e)


def run_policy(label, rejuvenate_every, seed=29):
    env = SimEnvironment(seed=seed, heap_capacity=100_000)
    run = CheckpointedExecution(
        env, make_segment(env), segments=SEGMENTS,
        checkpoint_cost=1.0, recovery_cost=5.0,
        rejuvenate_every=rejuvenate_every,
        max_retries_per_segment=100_000)
    report = run.run()
    ideal = SEGMENTS * SEGMENT_WORK
    print(f"  {label:<34} time={report.virtual_time:7.0f} "
          f"(x{report.virtual_time / ideal:4.1f} of ideal)  "
          f"failures={report.failures:4d}  "
          f"rejuvenations={report.rejuvenations}")
    return report


def main():
    ideal = SEGMENTS * SEGMENT_WORK
    print(f"long-running job: {SEGMENTS} segments, "
          f"ideal time {ideal:.0f} units\n")
    print("completion under three policies:")
    never = run_policy("checkpoints only (no rejuvenation)", None)
    eager = run_policy("rejuvenate every segment", 1)
    tuned = run_policy("rejuvenate every 4 segments", 4)

    assert tuned.virtual_time < never.virtual_time
    assert tuned.virtual_time <= eager.virtual_time

    best_every, best_time = None, float("inf")
    print("\nanalytic model (Garg-style) over rejuvenation periods:")
    for every in (1, 2, 4, 8, 16, None):
        t = completion_time(work=ideal, checkpoint_interval=SEGMENT_WORK,
                            rejuvenate_every=every, beta=3e-4,
                            checkpoint_cost=1.0, recovery_cost=5.0,
                            rejuvenation_cost=10.0)
        label = "never" if every is None else f"every {every}"
        print(f"  {label:<10} expected time {t:7.1f}")
        if every is not None and t < best_time:
            best_every, best_time = every, t
    print(f"\nmodel optimum: rejuvenate every {best_every} segments — "
          f"an interior period, in the same neighbourhood as the "
          f"simulated winner.")


if __name__ == "__main__":
    main()
