#!/usr/bin/env python3
"""A self-healing service-oriented storefront.

The scenario the paper's self-healing literature targets: a composite
web application (catalog, cart, payment) built on external services,
kept alive by *opportunistic* redundancy:

* dynamic service substitution — the payment interface has three
  independent providers; the broker rebinds on failure, including a
  similar-interface provider through a converter (Taher et al.);
* a rule-engine registry — design-time recovery rules (retry, degrade
  to a cached quote) guard the quote operation (Baresi/Pernici);
* micro-reboots — a stateful session component crashes under a
  transient fault and is individually restarted (Candea et al.).

Run:  python examples/self_healing_storefront.py
"""

from repro import (
    FunctionSpec,
    MicroReboot,
    ModularApplication,
    RestartableComponent,
    RuleEngine,
    Service,
    ServiceBroker,
    ServiceRegistry,
    SimEnvironment,
)
from repro.exceptions import AllAlternativesFailedError, ServiceFailure
from repro.faults import Heisenbug
from repro.techniques import DynamicServiceSubstitution
from repro.techniques.rule_engine import (
    RecoveryRegistry,
    RecoveryRule,
    retry_action,
    substitute_value_action,
)

PAY = FunctionSpec("pay", arity=2, semantic_key="payment")
PAY_ALT = FunctionSpec("charge", arity=2, semantic_key="payment")
QUOTE = FunctionSpec("quote", arity=1, semantic_key="quote")


def build_service_pool():
    registry = ServiceRegistry()
    registry.publish(Service("pay-primary", PAY,
                             impl=lambda amount, card: f"paid {amount}",
                             availability=0.5))
    registry.publish(Service("pay-backup", PAY,
                             impl=lambda amount, card: f"paid {amount}",
                             availability=0.8))
    # A similar interface ('charge') that needs argument conversion.
    registry.publish(Service("charge-gateway", PAY_ALT,
                             impl=lambda card, amount: f"paid {amount}",
                             availability=0.95))
    registry.publish(Service("quote-service", QUOTE,
                             impl=lambda item: 19.99, availability=0.6))
    broker = ServiceBroker(registry)
    broker.register_converter(
        "charge", "pay",
        convert_args=lambda args: (args[1], args[0]))  # swap arg order
    return registry, broker


def main():
    env = SimEnvironment(seed=11)
    registry, broker = build_service_pool()

    # --- payments: substitution proxy over three providers -----------
    payment = DynamicServiceSubstitution(
        PAY, broker, initial=registry.lookup("pay-primary"))

    # --- quotes: a rule-engine-guarded flaky service -------------------
    quote_service = registry.lookup("quote-service")
    rules = RecoveryRegistry()
    rules.add(RecoveryRule(
        "retry-quote", (ServiceFailure,),
        retry_action(lambda item, env=None:
                     quote_service.invoke(item, env=env), attempts=3),
        priority=10))
    rules.add(RecoveryRule(
        "cached-quote", (ServiceFailure,),
        substitute_value_action(18.50), priority=20))
    quotes = RuleEngine(
        lambda item, env=None: quote_service.invoke(item, env=env), rules)

    # --- sessions: a crashy stateful component under micro-reboot -----
    def session_handler(component, request, env):
        basket = component.state.data.setdefault("basket", [])
        basket.append(request)
        return len(basket)

    sessions = RestartableComponent(
        "sessions", session_handler, initializer=lambda: {"basket": []},
        faults=[Heisenbug("session-race", probability=0.05)],
        restart_cost=SimEnvironment.MICRO_REBOOT_COST)
    app = ModularApplication([sessions])
    reboots = MicroReboot(app, env=env, scope="micro")

    # --- drive the storefront ------------------------------------------
    orders = quotes_served = payments_ok = payments_failed = 0
    for order in range(200):
        price = quotes.execute(f"item-{order}", env=env)
        quotes_served += 1
        reboots.handle("sessions", f"item-{order}")
        try:
            result = payment.invoke(price, "visa-4242", env=env)
            payments_ok += result.startswith("paid")
        except AllAlternativesFailedError:
            # Every provider happened to be down at once; redundancy is
            # consumed, the order is surfaced to the user as failed.
            payments_failed += 1
        orders += 1

    print("self-healing storefront: 200 orders processed\n")
    print(f"  quotes served          {quotes_served}/200 "
          f"(rule engine recovered {quotes.recoveries} failures)")
    print(f"  payments completed     {payments_ok}/200 "
          f"(substitutions: {payment.stats.substitutions}, "
          f"adapted: {payment.stats.adapted_substitutions})")
    print(f"  session crashes        {reboots.stats.crashes} "
          f"(micro-reboots: {reboots.stats.reboots}, "
          f"downtime: {reboots.stats.downtime:.0f} time units)")
    print(f"  payments failed        {payments_failed}/200 "
          f"(all three providers down simultaneously)")
    print(f"  finally bound payment  {payment.bound.name}")
    print(f"  virtual time elapsed   {env.clock.now:.0f}")
    assert payments_ok + payments_failed == orders
    assert payments_ok > 0.9 * orders


if __name__ == "__main__":
    main()
