#!/usr/bin/env python3
"""Regenerate the paper's Tables 1 and 2 from the implementation.

The taxonomy is code: each of the seventeen implemented techniques
carries its classification as metadata, and this script renders both
tables and verifies the generated Table 2 against the transcription of
the paper's table, cell by cell.

Run:  python examples/survey_tables.py
"""

import repro.techniques  # noqa: F401 - registers all seventeen techniques
from repro.taxonomy.paper import PAPER_TABLE2
from repro.taxonomy.registry import default_registry
from repro.taxonomy.tables import render_diff, render_table1, render_table2


def main():
    print(render_table1())
    print()

    # Render in the paper's row order.
    entries = [default_registry.entry(row.name) for row in PAPER_TABLE2]
    print(render_table2(entries))
    print()

    mismatches = default_registry.diff_against(PAPER_TABLE2)
    print(render_diff(mismatches))

    print("\narchitectural patterns (paper Fig. 1 / Section 2):")
    for entry in entries:
        if entry.patterns:
            patterns = ", ".join(str(p) for p in entry.patterns)
            print(f"  {entry.name:<36} {patterns}")

    assert not mismatches
    assert len(default_registry) == 17


if __name__ == "__main__":
    main()
