#!/usr/bin/env python3
"""NVP over heterogeneous database engines (the Gashi et al. scenario).

Three independently implemented storage engines — a hash index, an
append-only log, and a sorted array — serve every statement behind a
voting front-end.  One replica ships with a bug that crashes INSERTs of
high keys; the vote masks it, and state reconciliation repairs the
replica so the redundancy is not consumed.

The demo also shows the pitfall the paper quotes: without result
canonicalisation, the engines' legitimate row-order diversity defeats
the vote.

Run:  python examples/replicated_database.py
"""

from repro.exceptions import NoMajorityError
from repro.faults import Bohrbug
from repro.sqlstore import (
    Delete,
    Insert,
    ReplicatedStore,
    Select,
    Update,
    eq,
    gt,
)
from repro.sqlstore.engines import diverse_engine_pool


def main():
    insert_bug = Bohrbug(
        "log-engine-high-key-bug",
        predicate=lambda args: (isinstance(args[0], Insert)
                                and dict(args[0].row)["id"] >= 100),
        effect="crash")
    engines = diverse_engine_pool({1: [insert_bug]})
    store = ReplicatedStore(engines)

    print("replicated store over:",
          ", ".join(type(e).__name__ for e in engines), "\n")

    # Populate, including keys that crash the buggy replica.
    for key in (7, 3, 103, 1, 101, 5):
        store.execute(Insert.of(id=key, balance=key * 10))
    store.execute(Update.set(gt("balance", 500), vip=True))
    vips = store.execute(Select(where=eq("vip", True)))
    store.execute(Delete(where=eq("id", 3)))
    remaining = store.execute(Select(order_by="id"))

    print(f"  statements served       {store.stats.statements}")
    print(f"  replica failures masked {store.stats.masked_failures}")
    print(f"  replicas repaired       {store.stats.repaired_replicas}")
    print(f"  vips found              {[r['id'] for r in vips]}")
    print(f"  rows remaining          {[r['id'] for r in remaining]}")
    print(f"  replica states agree    "
          f"{store.diverged_replicas() == []}")
    assert store.diverged_replicas() == []
    assert {r["id"] for r in vips} == {101, 103}

    # --- the canonicalisation pitfall ---------------------------------
    naive = ReplicatedStore(diverse_engine_pool(), canonicalise=False)
    for key in (9, 2, 6):
        naive.execute(Insert.of(id=key, v=key))
    try:
        naive.execute(Select())
        print("\nnaive voting: unexpectedly agreed")
    except NoMajorityError:
        print("\nnaive voting (no canonicalisation): the engines' "
              "legitimate row-order\ndiversity produced a false alarm — "
              "exactly the reconciliation problem\nGashi et al. report. "
              "The ReplicatedStore canonicalises results before\n"
              "voting, so the protected run above saw none.")


if __name__ == "__main__":
    main()
