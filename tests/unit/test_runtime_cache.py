"""Unit tests for the opt-in outcome memo-cache."""

import pytest

from repro import observe
from repro.runtime.cache import MemoCache


class TestGetOrCall:
    def test_miss_then_hit(self):
        cache = MemoCache()
        calls = []

        def fn(x):
            calls.append(x)
            return x * 2

        assert cache.get_or_call("v1", fn, 3) == 6
        assert cache.get_or_call("v1", fn, 3) == 6
        assert calls == [3]
        assert cache.hits == 1 and cache.misses == 1

    def test_keyed_on_version_name_and_args(self):
        cache = MemoCache()
        assert cache.get_or_call("a", lambda x: x + 1, 1) == 2
        # Same args, different version name: distinct entry.
        assert cache.get_or_call("b", lambda x: x - 1, 1) == 0
        assert cache.misses == 2 and cache.hits == 0
        assert len(cache) == 2

    def test_unhashable_args_compute_without_storing(self):
        cache = MemoCache()
        assert cache.get_or_call("v", sum, [1, 2, 3]) == 6
        assert cache.get_or_call("v", sum, [1, 2, 3]) == 6
        assert cache.uncacheable == 2
        assert cache.misses == 2 and cache.hits == 0
        assert len(cache) == 0

    def test_lru_eviction(self):
        cache = MemoCache(max_entries=2)
        cache.get_or_call("v", abs, -1)
        cache.get_or_call("v", abs, -2)
        cache.get_or_call("v", abs, -1)   # touch: -1 is now most recent
        cache.get_or_call("v", abs, -3)   # evicts -2
        assert cache.evictions == 1
        cache.get_or_call("v", abs, -2)   # miss again
        assert cache.misses == 4 and cache.hits == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoCache(max_entries=0)


class TestWrap:
    def test_wrapped_callable_memoises(self):
        cache = MemoCache()
        calls = []

        def triple(x):
            calls.append(x)
            return x * 3

        cached = cache.wrap(triple)
        assert [cached(2), cached(2), cached(4)] == [6, 6, 12]
        assert calls == [2, 4]
        assert cache.stats()["hits"] == 1
        assert cache.stats()["hit_rate"] == pytest.approx(1 / 3)

    def test_wrap_uses_explicit_name(self):
        cache = MemoCache()
        first = cache.wrap(lambda x: x, name="shared")
        second = cache.wrap(lambda x: x, name="shared")
        first(5)
        second(5)   # same key: served from the first wrapper's entry
        assert cache.hits == 1 and cache.misses == 1

    def test_clear_preserves_counters(self):
        cache = MemoCache()
        cached = cache.wrap(abs, name="abs")
        cached(-1)
        cached(-1)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1 and cache.misses == 1
        cached(-1)
        assert cache.misses == 2


class TestTelemetry:
    def test_hit_miss_counters_reach_metrics(self):
        with observe.session() as tel:
            cache = MemoCache(name="fastpath")
            cached = cache.wrap(abs, name="abs")
            cached(-1)
            cached(-1)
            cached(-2)
        assert tel.metrics.value("repro_cache_misses_total",
                                 cache="fastpath") == 2.0
        assert tel.metrics.value("repro_cache_hits_total",
                                 cache="fastpath") == 1.0

    def test_disabled_session_keeps_local_counters_only(self):
        cache = MemoCache()
        cached = cache.wrap(abs, name="abs")
        cached(-1)
        cached(-1)
        assert cache.hits == 1 and cache.misses == 1
        assert observe.current().enabled is False
