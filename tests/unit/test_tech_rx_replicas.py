"""Unit tests for environment perturbation (RX) and process replicas."""

import pytest

from repro.components.state import DictState
from repro.environment import SimEnvironment
from repro.environment.simenv import (
    PAD_ALLOCATIONS,
    SHUFFLE_MESSAGES,
    THROTTLE_REQUESTS,
)
from repro.exceptions import (
    AllAlternativesFailedError,
    AttackDetectedError,
    BohrbugFailure,
)
from repro.faults.development import Bohrbug, Heisenbug, InputRegion
from repro.faults.environmental import LoadBug, OrderingBug, OverflowBug
from repro.faults.injector import FaultyFunction
from repro.faults.malicious import (
    absolute_address_attack,
    benign_request,
    code_injection_attack,
)
from repro.taxonomy.paper import paper_entry
from repro.techniques.environment_perturbation import EnvironmentPerturbation
from repro.techniques.process_replicas import ProcessReplicas


def guarded(fault, env):
    f = FaultyFunction(lambda x: x * 2, faults=[fault], name="op")
    return lambda x, env=None: f(x, env=env)


class TestRx:
    def test_taxonomy_matches_paper(self):
        assert EnvironmentPerturbation.TAXONOMY.matches(
            paper_entry("Environment perturbation"))

    def test_healthy_operation_untouched(self):
        env = SimEnvironment(seed=1)
        rx = EnvironmentPerturbation(lambda x, env=None: x * 2, env)
        report = rx.execute_report(4)
        assert report.value == 8 and not report.recovered

    def test_padding_heals_overflow(self):
        env = SimEnvironment(seed=1)
        rx = EnvironmentPerturbation(
            guarded(OverflowBug("o", overflow_cells=4, trigger_modulo=1),
                    env), env)
        report = rx.execute_report(6)
        assert report.recovered
        assert report.perturbations_used == (PAD_ALLOCATIONS,)
        assert rx.healing_log == [PAD_ALLOCATIONS]

    def test_throttling_heals_load_bug(self):
        env = SimEnvironment(seed=1)
        rx = EnvironmentPerturbation(
            guarded(LoadBug("l", probability=1.0), env), env,
            menu=(THROTTLE_REQUESTS,))
        report = rx.execute_report(6)
        assert report.recovered
        assert report.perturbations_used == (THROTTLE_REQUESTS,)

    def test_menu_escalates_in_order(self):
        env = SimEnvironment(seed=1)
        rx = EnvironmentPerturbation(
            guarded(LoadBug("l", probability=1.0), env), env,
            menu=(PAD_ALLOCATIONS, SHUFFLE_MESSAGES, THROTTLE_REQUESTS))
        report = rx.execute_report(6)
        assert report.perturbations_used == (
            PAD_ALLOCATIONS, SHUFFLE_MESSAGES, THROTTLE_REQUESTS)

    def test_pure_bohrbug_not_survivable(self):
        env = SimEnvironment(seed=1)
        rx = EnvironmentPerturbation(
            guarded(Bohrbug("b", region=InputRegion(0, 100)), env), env)
        with pytest.raises(AllAlternativesFailedError):
            rx.execute(6)
        assert rx.unrecovered == 1

    def test_state_rolled_back_between_attempts(self):
        env = SimEnvironment(seed=1)
        state = DictState(writes=0)
        bug = LoadBug("l", probability=1.0)
        inner = FaultyFunction(lambda x: x, faults=[bug])

        def operation(x, env=None):
            state["writes"] = state["writes"] + 1
            return inner(x, env=env)

        rx = EnvironmentPerturbation(operation, env, subject=state,
                                     menu=(PAD_ALLOCATIONS,
                                           THROTTLE_REQUESTS))
        rx.execute(1)
        # Only the successful attempt's write survives.
        assert state["writes"] == 1

    def test_perturbations_reset_after_recovery(self):
        env = SimEnvironment(seed=1)
        rx = EnvironmentPerturbation(
            guarded(LoadBug("l", probability=1.0), env), env,
            menu=(THROTTLE_REQUESTS,), reset_after=True)
        rx.execute(6)
        assert not env.throttled
        assert env.applied_perturbations == []

    def test_perturbations_kept_when_requested(self):
        env = SimEnvironment(seed=1)
        rx = EnvironmentPerturbation(
            guarded(LoadBug("l", probability=1.0), env), env,
            menu=(THROTTLE_REQUESTS,), reset_after=False)
        rx.execute(6)
        assert env.throttled

    def test_empty_menu_rejected(self):
        with pytest.raises(ValueError):
            EnvironmentPerturbation(lambda x: x, SimEnvironment(), menu=())


class TestProcessReplicas:
    def test_taxonomy_matches_paper(self):
        assert ProcessReplicas.TAXONOMY.matches(
            paper_entry("Process replicas"))

    def test_benign_requests_agree(self):
        replicas = ProcessReplicas(variants=3)
        assert replicas.serve(benign_request(10)) == 11
        assert replicas.detections == 0

    def test_absolute_address_attack_detected(self):
        replicas = ProcessReplicas(variants=2, tagging=False)
        with pytest.raises(AttackDetectedError):
            replicas.serve(absolute_address_attack())
        assert replicas.detections == 1

    def test_code_injection_detected_via_tags(self):
        replicas = ProcessReplicas(variants=2, tagging=True)
        verdict = replicas.serve_verdict(code_injection_attack())
        assert verdict.attack_detected

    def test_injection_with_guessed_tag_still_detected(self):
        # Guessing one variant's tag cannot satisfy the others.
        replicas = ProcessReplicas(variants=2, tagging=True)
        verdict = replicas.serve_verdict(
            code_injection_attack(guessed_tag="tag-0"))
        assert verdict.attack_detected

    def test_plain_int_request(self):
        replicas = ProcessReplicas(variants=2)
        assert replicas.serve(7) == 8

    def test_needs_two_variants(self):
        with pytest.raises(ValueError):
            ProcessReplicas(variants=1)

    def test_verdict_reports_behaviours(self):
        replicas = ProcessReplicas(variants=2, tagging=False)
        verdict = replicas.serve_verdict(absolute_address_attack())
        assert len(verdict.behaviours) == 2
        summaries = dict(verdict.behaviours)
        assert "SegmentationFault" in summaries.values() or \
            "MemoryViolation" in summaries.values()

    def test_variants_reset_after_detection(self):
        # The aborted attack already corrupted variant memory before the
        # divergence was seen; the monitor must restart the replicas so
        # later benign traffic is unaffected.
        replicas = ProcessReplicas(variants=2)
        with pytest.raises(AttackDetectedError):
            replicas.serve(absolute_address_attack())
        assert replicas.serve(benign_request(4)) == 5

    def test_single_variant_baseline_is_exploitable(self):
        # What the replicas protect against: an unprotected process runs
        # the injected code.
        from repro.environment.process import AddressSpace, SimulatedProcess
        from repro.faults.malicious import install_service
        process = SimulatedProcess("naked", AddressSpace(0, 1000), tag="",
                                   check_tags=False)
        program = install_service(process)
        attack = code_injection_attack()
        assert process.execute(program, attack.values) == 0x511
