"""Serial-vs-parallel byte-identity for captured telemetry.

The pool captures each chunk's telemetry in a worker-local session and
merges the snapshots in submission order, so with a session installed
the merged record of a pooled run must equal the serial run's byte for
byte.  Workload costs here are dyadic (1.0, 0.5) so float summation is
exact under any chunk grouping, and every trial binds the session to
its environment's virtual clock so timestamps are seed-derived rather
than session-relative (see docs/OBSERVABILITY.md).
"""

from repro import observe
from repro.harness.experiment import Experiment
from repro.runtime.pmap import ParallelMap

#: Pool self-metrics are backend-dependent by design; the byte-identity
#: contract covers the workload series only.
EXCLUDE = ("repro_runtime_",)


# -- module-level (picklable) building blocks for the process backend --


def nvp_trial(seed):
    """A telemetry-rich pure trial with dyadic costs only."""
    from repro.adjudicators.voting import MajorityVoter
    from repro.components.library import diverse_versions
    from repro.environment import SimEnvironment
    from repro.exceptions import NoMajorityError
    from repro.techniques.nvp import NVersionProgramming

    env = SimEnvironment(seed=seed)
    tel = observe.current()
    if tel.enabled:
        tel.bind_clock(env.clock)
    voter = MajorityVoter()
    voter.unit_cost = 0.5  # dyadic: exact under any summation grouping
    nvp = NVersionProgramming(
        diverse_versions(lambda x: x + 1, 3, 0.1, seed=seed),
        voter=voter)
    ok = 0
    for x in range(4):
        try:
            ok += nvp.execute(x, env=env) == x + 1
        except NoMajorityError:
            pass
    return {"ok": float(ok)}


def _run_backend(backend, instrument=False, workers=3):
    """One instrumented experiment run; returns the outer session."""
    with observe.session() as tel:
        results = Experiment(name="t", trial=nvp_trial,
                             seeds=tuple(range(9)),
                             instrument=instrument,
                             workers=1 if backend == "serial" else workers,
                             backend=backend).run()
    return tel, results


def _span_tree(tel):
    return [span.to_dict() for span in tel.tracer.spans]


class TestCapturedTelemetryByteIdentity:
    def test_metric_dumps_identical_across_backends(self):
        serial, _ = _run_backend("serial")
        thread, _ = _run_backend("thread")
        process, _ = _run_backend("process")
        expected = serial.metrics.render_prometheus(exclude=EXCLUDE)
        assert thread.metrics.render_prometheus(exclude=EXCLUDE) \
            == expected
        assert process.metrics.render_prometheus(exclude=EXCLUDE) \
            == expected
        assert thread.metrics.as_dict(exclude=EXCLUDE) \
            == serial.metrics.as_dict(exclude=EXCLUDE)

    def test_span_trees_identical_across_backends(self):
        serial, _ = _run_backend("serial")
        thread, _ = _run_backend("thread")
        process, _ = _run_backend("process")
        expected = _span_tree(serial)
        assert _span_tree(thread) == expected
        assert _span_tree(process) == expected
        assert thread.tracer.timeline() == serial.tracer.timeline()

    def test_event_history_identical_across_backends(self):
        serial, _ = _run_backend("serial")
        process, _ = _run_backend("process")
        strip = lambda bus: [(e.topic, e.time, e.seq, e.payload)  # noqa: E731
                             for e in bus.history]
        assert strip(process.bus) == strip(serial.bus)
        assert process.bus.counts == serial.bus.counts

    def test_results_identical_across_backends(self):
        _, serial = _run_backend("serial")
        _, process = _run_backend("process")
        assert repr(process) == repr(serial)

    def test_instrumented_trials_nest_inside_capture(self):
        # instrument=True opens a per-trial session inside each worker;
        # with thread workers it must shadow the chunk capture session,
        # not the process-global one, so digests still match serial.
        serial_tel, serial = _run_backend("serial", instrument=True)
        thread_tel, thread = _run_backend("thread", instrument=True)
        assert [r.telemetry for r in thread] == [r.telemetry
                                                 for r in serial]
        # The per-trial sessions swallowed the workload telemetry; the
        # outer sessions agree on that too.
        assert thread_tel.metrics.as_dict(exclude=EXCLUDE) \
            == serial_tel.metrics.as_dict(exclude=EXCLUDE)


class TestMidCampaignSessionInstall:
    def test_session_installed_after_pool_creation_is_captured(self):
        # Regression: the capture decision must be taken per chunk at
        # submission time, not once per pool, so a session installed
        # after the pool exists still collects telemetry.
        pool = ParallelMap(workers=2, backend="thread", chunk_size=3)
        pool.map(nvp_trial, range(6))  # no session: nothing captured
        assert pool.stats.captured_chunks == 0
        try:
            tel = observe.install(observe.Telemetry())
            pool.map(nvp_trial, range(6))
            assert pool.stats.captured_chunks == 2
            assert tel.metrics.value(
                "repro_pattern_executions_total",
                pattern="ParallelEvaluation") > 0
            assert len(tel.tracer.spans) > 0
        finally:
            observe.disable()

    def test_serial_retry_of_captured_chunk_reaches_the_session(self):
        def flaky(x):
            if x == "boom":
                raise RuntimeError("worker-side failure")
            return nvp_trial(x)

        with observe.session() as tel:
            pool = ParallelMap(workers=2, backend="thread", chunk_size=1)
            results = pool.map(flaky, [0, 1])
            assert len(results) == 2
            assert pool.stats.captured_chunks == 2
            assert len(tel.tracer.spans) > 0


class TestHashSeedStability:
    def test_merged_dump_is_hashseed_independent(self, tmp_path):
        import pathlib
        import subprocess
        import sys

        script = (
            "import sys; sys.path.insert(0, {src!r});"
            "sys.path.insert(0, {here!r});"
            "from test_parallel_telemetry import _run_backend, EXCLUDE;"
            "tel, _ = _run_backend('process');"
            "print(tel.metrics.render_prometheus(exclude=EXCLUDE))"
        ).format(src=str(pathlib.Path(__file__).resolve()
                         .parents[2] / "src"),
                 here=str(pathlib.Path(__file__).resolve().parent))
        dumps = set()
        for seed in ("0", "4242"):
            proc = subprocess.run(
                [sys.executable, "-c", script], capture_output=True,
                text=True, env={"PYTHONHASHSEED": seed,
                                "PATH": __import__("os").environ["PATH"]})
            assert proc.returncode == 0, proc.stderr
            dumps.add(proc.stdout)
        assert len(dumps) == 1
