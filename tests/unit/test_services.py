"""Unit tests for the service substrate: services, registry, broker,
adapters, orchestration engine."""

import pytest

from repro.components.interface import FunctionSpec
from repro.environment import SimEnvironment
from repro.exceptions import ServiceFailure, ServiceLookupError
from repro.services.adapters import Adapter
from repro.services.broker import ServiceBroker
from repro.services.process_engine import (
    Invoke,
    OrchestrationEngine,
    Parallel,
    Retry,
    Scope,
    Sequence,
)
from repro.services.registry import ServiceRegistry
from repro.services.service import Service

SQRT = FunctionSpec("sqrt", arity=1, semantic_key="square-root")
ROOT2 = FunctionSpec("root2", arity=1, semantic_key="square-root")
ADD = FunctionSpec("add", arity=2)


def sqrt_service(name, availability=1.0, latency=1.0):
    return Service(name, SQRT, impl=lambda x: x ** 0.5,
                   availability=availability, latency=latency)


class TestService:
    def test_invoke(self):
        assert sqrt_service("s").invoke(16) == 4

    def test_arity_enforced(self):
        with pytest.raises(TypeError):
            sqrt_service("s").invoke(1, 2)

    def test_unavailable_service_raises(self):
        service = sqrt_service("down", availability=0.0)
        with pytest.raises(ServiceFailure):
            service.invoke(4)
        assert service.drops == 1

    def test_availability_rate_with_env(self):
        env = SimEnvironment(seed=1)
        service = sqrt_service("flaky", availability=0.7)
        drops = 0
        for _ in range(2000):
            try:
                service.invoke(4, env=env)
            except ServiceFailure:
                drops += 1
        assert 0.25 < drops / 2000 < 0.35

    def test_availability_deterministic_without_env(self):
        a = sqrt_service("flaky", availability=0.5)
        b = sqrt_service("flaky", availability=0.5)
        pattern_a, pattern_b = [], []
        for service, pattern in ((a, pattern_a), (b, pattern_b)):
            for _ in range(30):
                try:
                    service.invoke(4)
                    pattern.append(True)
                except ServiceFailure:
                    pattern.append(False)
        assert pattern_a == pattern_b

    def test_latency_billed(self):
        env = SimEnvironment()
        sqrt_service("s", latency=3.5).invoke(4, env=env)
        assert env.clock.now == 3.5

    def test_validation(self):
        with pytest.raises(ValueError):
            sqrt_service("s", availability=1.5)
        with pytest.raises(ValueError):
            sqrt_service("s", latency=-1)


class TestRegistry:
    def test_publish_and_lookup(self):
        registry = ServiceRegistry()
        service = registry.publish(sqrt_service("a"))
        assert registry.lookup("a") is service
        assert "a" in registry and len(registry) == 1

    def test_duplicate_names_rejected(self):
        registry = ServiceRegistry()
        registry.publish(sqrt_service("a"))
        with pytest.raises(ValueError):
            registry.publish(sqrt_service("a"))

    def test_withdraw(self):
        registry = ServiceRegistry()
        registry.publish(sqrt_service("a"))
        registry.withdraw("a")
        assert registry.lookup("a") is None

    def test_implementations_of(self):
        registry = ServiceRegistry()
        registry.publish(sqrt_service("a"))
        registry.publish(sqrt_service("b"))
        registry.publish(Service("adder", ADD, impl=lambda a, b: a + b))
        matches = registry.implementations_of(SQRT)
        assert {s.name for s in matches} == {"a", "b"}

    def test_exclusion(self):
        registry = ServiceRegistry()
        registry.publish(sqrt_service("a"))
        registry.publish(sqrt_service("b"))
        assert {s.name for s in registry.implementations_of(
            SQRT, exclude="a")} == {"b"}

    def test_similar_to(self):
        registry = ServiceRegistry()
        registry.publish(Service("other-root", ROOT2, impl=lambda x: x ** 0.5))
        similar = registry.similar_to(SQRT)
        assert [s.name for s in similar] == ["other-root"]


class TestAdapter:
    def test_requires_similarity(self):
        unrelated = Service("adder", ADD, impl=lambda a, b: a + b)
        with pytest.raises(ValueError):
            Adapter(unrelated, SQRT)

    def test_adapts_arguments_and_result(self):
        target = Service("root2", ROOT2, impl=lambda x: x ** 0.5)
        adapter = Adapter(target, SQRT,
                          convert_args=lambda args: (args[0] * 4,),
                          convert_result=lambda y: y / 2)
        assert adapter.invoke(16) == pytest.approx(4.0)

    def test_conversion_cost_billed(self):
        env = SimEnvironment()
        target = Service("root2", ROOT2, impl=lambda x: x ** 0.5, latency=1.0)
        adapter = Adapter(target, SQRT)
        adapter.invoke(4, env=env)
        assert env.clock.now == pytest.approx(1.0 + Adapter.CONVERSION_COST)


class TestBroker:
    def _pool(self):
        registry = ServiceRegistry()
        registry.publish(sqrt_service("low", availability=0.5))
        registry.publish(sqrt_service("high", availability=0.99))
        registry.publish(Service("other-root", ROOT2,
                                 impl=lambda x: x ** 0.5,
                                 availability=0.9))
        return registry, ServiceBroker(registry)

    def test_exact_matches_first_by_availability(self):
        _, broker = self._pool()
        names = [getattr(e, "name") for e in broker.substitutes(SQRT)]
        assert names[:2] == ["high", "low"]

    def test_similar_requires_registered_converter(self):
        _, broker = self._pool()
        assert len(broker.substitutes(SQRT)) == 2
        broker.register_converter("root2", "sqrt",
                                  convert_args=lambda args: args)
        endpoints = broker.substitutes(SQRT)
        assert len(endpoints) == 3
        assert isinstance(endpoints[-1], Adapter)

    def test_require_substitutes_raises_when_empty(self):
        registry = ServiceRegistry()
        broker = ServiceBroker(registry)
        with pytest.raises(ServiceLookupError):
            broker.require_substitutes(SQRT)

    def test_exclusion_respected(self):
        _, broker = self._pool()
        names = [e.name for e in broker.substitutes(SQRT, exclude="high")]
        assert names == ["low"]


class TestOrchestration:
    def _engine(self):
        registry = ServiceRegistry()
        registry.publish(sqrt_service("s"))
        registry.publish(Service("adder", ADD, impl=lambda a, b: a + b))
        return OrchestrationEngine(registry)

    def test_invoke_binds_lazily(self):
        engine = self._engine()
        result = engine.run(Invoke(SQRT, args=(25,)))
        assert result == 5
        assert engine.bindings["sqrt"].name == "s"

    def test_sequence_threads_context(self):
        engine = self._engine()
        flow = Sequence(
            Invoke(SQRT, args=(16,), result_key="r"),
            Invoke(ADD, args=lambda ctx: (ctx["r"], 1), result_key="out"),
        )
        ctx = {}
        assert engine.run(flow, ctx) == 5
        assert ctx["out"] == 5

    def test_parallel_collects_results(self):
        engine = self._engine()
        flow = Parallel(Invoke(SQRT, args=(4,), result_key="a"),
                        Invoke(SQRT, args=(9,), result_key="b"))
        assert engine.run(flow) == [2, 3]

    def test_retry_recovers_flaky_service(self):
        registry = ServiceRegistry()
        calls = {"n": 0}

        def flaky(x):
            calls["n"] += 1
            return x

        service = Service("s", SQRT, impl=flaky, availability=0.5)
        registry.publish(service)
        engine = OrchestrationEngine(registry)
        # availability draws are deterministic per call counter; with
        # enough attempts the retry eventually lands.
        result = engine.run(Retry(Invoke(SQRT, args=(7,)), attempts=20))
        assert result == 7

    def test_retry_exhausts(self):
        registry = ServiceRegistry()
        registry.publish(sqrt_service("dead", availability=0.0))
        engine = OrchestrationEngine(registry)
        with pytest.raises(ServiceFailure):
            engine.run(Retry(Invoke(SQRT, args=(4,)), attempts=3))

    def test_scope_handler_catches(self):
        registry = ServiceRegistry()
        registry.publish(sqrt_service("dead", availability=0.0))
        engine = OrchestrationEngine(registry)
        flow = Scope(Invoke(SQRT, args=(4,)),
                     handlers={ServiceFailure:
                               lambda eng, ctx, exc: "fallback"})
        assert engine.run(flow) == "fallback"

    def test_scope_activity_handler(self):
        engine = self._engine()
        engine.registry.publish(sqrt_service("dead", availability=0.0))
        engine.bind("sqrt", engine.registry.lookup("dead"))
        flow = Scope(Invoke(SQRT, args=(4,)),
                     handlers={ServiceFailure: Invoke(ADD, args=(1, 2))})
        assert engine.run(flow) == 3

    def test_rebinding_redirects_invocations(self):
        engine = self._engine()
        replacement = Service("s2", SQRT, impl=lambda x: -1.0)
        engine.bind("sqrt", replacement)
        assert engine.run(Invoke(SQRT, args=(25,))) == -1.0

    def test_missing_implementation_raises(self):
        engine = OrchestrationEngine(ServiceRegistry())
        with pytest.raises(ServiceLookupError):
            engine.run(Invoke(SQRT, args=(4,)))

    def test_empty_composites_rejected(self):
        with pytest.raises(ValueError):
            Sequence()
        with pytest.raises(ValueError):
            Parallel()
        with pytest.raises(ValueError):
            Retry(Invoke(SQRT), attempts=0)
