"""Unit tests for genetic fault fixing and automatic workarounds."""

import pytest

from repro.adjudicators.acceptance import TestSuiteAdjudicator
from repro.components.state import DictState
from repro.exceptions import (
    BohrbugFailure,
    RepairFailedError,
    WorkaroundExhaustedError,
)
from repro.repair.ast_ops import Compare, If, Program, Return, Var
from repro.repair.engine import GeneticRepairEngine
from repro.taxonomy.paper import paper_entry
from repro.techniques.genetic_repair import GeneticFaultFixing
from repro.techniques.workarounds import (
    AutomaticWorkarounds,
    RewriteRule,
)


def buggy_max():
    return Program(
        name="maxp", params=("a", "b"),
        body=(If(cond=Compare("<", Var("a"), Var("b")),
                 then=(Return(Var("a")),),
                 orelse=(Return(Var("b")),)),))


def max_suite():
    return TestSuiteAdjudicator([((a, b), max(a, b))
                                 for a in (0, 2, 9) for b in (1, 5, 9)])


class TestGeneticFaultFixing:
    def test_taxonomy_matches_paper(self):
        assert GeneticFaultFixing.TAXONOMY.matches(
            paper_entry("Fault fixing, genetic programming"))

    def test_detects_unhealthy_program(self):
        fixer = GeneticFaultFixing(buggy_max(), max_suite())
        assert not fixer.is_healthy()

    def test_heal_swaps_in_fixed_program(self):
        engine = GeneticRepairEngine(max_suite(), population_size=30,
                                     max_generations=40, seed=8)
        fixer = GeneticFaultFixing(buggy_max(), max_suite(), engine=engine)
        report = fixer.heal()
        assert report.healed
        assert fixer.is_healthy()
        assert fixer(3, 7) == 7
        assert fixer.heals == 1

    def test_healthy_program_not_touched(self):
        good = Program("maxp", ("a", "b"),
                       body=(If(cond=Compare(">", Var("a"), Var("b")),
                                then=(Return(Var("a")),),
                                orelse=(Return(Var("b")),)),))
        fixer = GeneticFaultFixing(good, max_suite())
        report = fixer.heal()
        assert not report.healed  # nothing to do
        assert fixer.is_healthy()

    def test_heal_or_raise_on_impossible_target(self):
        impossible = TestSuiteAdjudicator(
            [((i,), 10 ** 9 + i * 7919) for i in range(5)])
        program = Program("p", ("x",), body=(Return(Var("x")),))
        engine = GeneticRepairEngine(impossible, population_size=6,
                                     max_generations=2, seed=0)
        fixer = GeneticFaultFixing(program, impossible, engine=engine)
        with pytest.raises(RepairFailedError):
            fixer.heal_or_raise()
        assert fixer.failed_heals == 1


def container_api():
    """A container API with intrinsic redundancy: push == insert at end.

    ``push`` carries a Bohrbug (fails once the container holds >= 3
    items); ``insert`` implements the same functionality and is healthy.
    """
    def push(subject, value, env=None):
        if len(subject["items"]) >= 3:
            raise BohrbugFailure("push fails on containers >= 3")
        subject["items"].append(value)
        return len(subject["items"])

    def insert(subject, index, value, env=None):
        subject["items"].insert(index, value)
        return len(subject["items"])

    def size(subject, env=None):
        return len(subject["items"])

    operations = {"push": push, "insert": insert, "size": size}
    rules = [
        RewriteRule(
            name="push-as-insert", op="push",
            rewrite=lambda args: [("insert", (10 ** 9, args[0]))],
            likelihood=0.9),
    ]
    return operations, rules


class TestAutomaticWorkarounds:
    def _technique(self, extra_rules=(), **kwargs):
        operations, rules = container_api()
        subject = DictState(items=[])
        tech = AutomaticWorkarounds(operations, [*rules, *extra_rules],
                                    subject, **kwargs)
        return tech, subject

    def test_taxonomy_matches_paper(self):
        assert AutomaticWorkarounds.TAXONOMY.matches(
            paper_entry("Automatic workarounds"))

    def test_healthy_sequence_untouched(self):
        tech, subject = self._technique()
        report = tech.execute([("push", (1,)), ("push", (2,)),
                               ("size", ())])
        assert report.workaround_used is None
        assert report.results[-1] == 2
        assert subject["items"] == [1, 2]

    def test_workaround_found_for_failing_operation(self):
        tech, subject = self._technique()
        sequence = [("push", (1,)), ("push", (2,)), ("push", (3,)),
                    ("push", (4,)), ("size", ())]
        report = tech.execute(sequence)
        assert report.workaround_used == "push-as-insert"
        assert subject["items"] == [1, 2, 3, 4]
        assert tech.workarounds_found == 1

    def test_state_rolled_back_between_candidates(self):
        bad_rule = RewriteRule(
            name="useless", op="push",
            rewrite=lambda args: [("push", args)],  # same failing op
            likelihood=0.99)  # tried first
        tech, subject = self._technique(extra_rules=[bad_rule])
        sequence = [("push", (i,)) for i in range(1, 5)]
        report = tech.execute(sequence)
        assert report.workaround_used == "push-as-insert"
        assert report.candidates_tried >= 2
        assert subject["items"] == [1, 2, 3, 4]

    def test_candidates_sorted_by_likelihood(self):
        operations, rules = container_api()
        low = RewriteRule("low", "push", lambda args: [("size", ())],
                          likelihood=0.1)
        tech = AutomaticWorkarounds(operations, [low, *rules],
                                    DictState(items=[]))
        candidates = tech.candidates_for([("push", (1,))], 0)
        assert candidates[0][0] == "push-as-insert"

    def test_exhaustion_raises_and_restores_state(self):
        operations, _ = container_api()
        tech = AutomaticWorkarounds(operations, [], DictState(items=[]))
        with pytest.raises(WorkaroundExhaustedError):
            tech.execute([("push", (1,)), ("push", (2,)), ("push", (3,)),
                          ("push", (4,))])
        assert tech.subject["items"] == []
        assert tech.exhausted == 1

    def test_unknown_operation_rejected(self):
        tech, _ = self._technique()
        with pytest.raises(KeyError):
            tech.execute([("frobnicate", ())])

    def test_max_candidates_bound(self):
        operations, rules = container_api()
        many_rules = rules + [
            RewriteRule(f"r{i}", "push",
                        lambda args: [("push", args)], likelihood=1.0)
            for i in range(50)]
        tech = AutomaticWorkarounds(operations, many_rules,
                                    DictState(items=[]), max_candidates=5)
        candidates = tech.candidates_for([("push", (1,))], 0)
        assert len(candidates) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            AutomaticWorkarounds({}, [], DictState())
        operations, rules = container_api()
        with pytest.raises(ValueError):
            AutomaticWorkarounds(operations, rules, DictState(),
                                 max_candidates=0)
