"""Unit tests for the sliding-window SLI monitor."""

import pytest

from repro.observe import EventBus, SliMonitor
from repro.observe.sli import percentile


class TestPercentile:
    def test_nearest_rank(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(samples, 0.5) == 3.0
        assert percentile(samples, 0.95) == 5.0
        assert percentile(samples, 0.0) == 1.0

    def test_single_sample(self):
        assert percentile([7.0], 0.99) == 7.0


class TestSliMonitor:
    def test_availability_over_outcomes(self):
        bus = EventBus()
        monitor = SliMonitor(bus)
        for ok in (True, True, True, False):
            bus.publish("unit.outcome", pattern="nvp", ok=ok)
        row = monitor.rows()[0]
        assert row["technique"] == "nvp"
        assert row["availability"] == pytest.approx(0.75)
        assert row["failure_rate"] == pytest.approx(0.25)
        assert row["outcomes"] == 4

    def test_window_slides(self):
        bus = EventBus()
        monitor = SliMonitor(bus, window=2)
        bus.publish("unit.outcome", pattern="nvp", ok=False)
        bus.publish("unit.outcome", pattern="nvp", ok=True)
        bus.publish("unit.outcome", pattern="nvp", ok=True)
        row = monitor.rows()[0]
        # The early failure fell out of the 2-sample window...
        assert row["availability"] == 1.0
        # ...but the all-time tallies remember it.
        assert row["outcomes_seen"] == 3
        assert row["failures_seen"] == 1

    def test_recovery_latency_percentiles(self):
        bus = EventBus()
        monitor = SliMonitor(bus)
        for downtime in (1.0, 2.0, 3.0, 4.0, 10.0):
            bus.publish("reboot", scope="micro", downtime=downtime)
        row = monitor.rows()[0]
        assert row["technique"] == "micro"
        assert row["recovery_p50"] == 3.0
        assert row["recovery_p95"] == 10.0
        assert row["recovery_p99"] == 10.0
        assert row["availability"] is None

    def test_recovery_topics_map_to_their_cost_fields(self):
        bus = EventBus()
        monitor = SliMonitor(bus)
        bus.publish("checkpoint.rollback", technique="ckpt", cost=4.0)
        bus.publish("rejuvenation.performed", technique="rejuv", cost=6.0)
        rows = {row["technique"]: row for row in monitor.rows()}
        assert rows["ckpt"]["recovery_p50"] == 4.0
        assert rows["rejuv"]["recovery_p50"] == 6.0

    def test_key_precedence_technique_over_pattern(self):
        bus = EventBus()
        monitor = SliMonitor(bus)
        bus.publish("unit.outcome", technique="NVP", pattern="nvp-engine",
                    ok=True)
        assert monitor.rows()[0]["technique"] == "NVP"

    def test_events_without_cost_are_ignored(self):
        bus = EventBus()
        monitor = SliMonitor(bus)
        bus.publish("reboot", scope="micro")  # no downtime payload
        assert monitor.rows() == []

    def test_merge_redelivery_feeds_the_monitor(self):
        worker = EventBus()
        worker.publish("unit.outcome", pattern="nvp", ok=True)
        worker.publish("unit.outcome", pattern="nvp", ok=False)
        parent = EventBus()
        monitor = SliMonitor(parent)
        parent.merge(worker.snapshot())
        row = monitor.rows()[0]
        assert row["outcomes"] == 2
        assert row["availability"] == pytest.approx(0.5)

    def test_detach_stops_observing(self):
        bus = EventBus()
        monitor = SliMonitor(bus)
        monitor.detach()
        bus.publish("unit.outcome", pattern="nvp", ok=True)
        assert monitor.rows() == []

    def test_render_marks_missing_data_with_dashes(self):
        bus = EventBus()
        monitor = SliMonitor(bus)
        bus.publish("unit.outcome", pattern="nvp", ok=True)
        bus.publish("reboot", scope="micro", downtime=2.0)
        text = monitor.render()
        lines = text.splitlines()
        assert any("nvp" in line and "1.0000" in line and "-" in line
                   for line in lines)
        assert any("micro" in line and line.count("2") >= 3
                   for line in lines)
        assert "window=256" in lines[0]

    def test_as_dict_is_json_friendly(self):
        import json

        bus = EventBus()
        monitor = SliMonitor(bus, window=8)
        bus.publish("unit.outcome", pattern="nvp", ok=True)
        doc = monitor.as_dict()
        assert doc["schema"] == "repro-sli-report/v2"
        assert doc["window"] == 8
        # Without an injected wall clock the wall-derived gauges are
        # null and the document is a pure function of the event stream.
        assert doc["trials_per_sec"] is None
        assert doc["wall_span"] is None
        json.dumps(doc)

    def test_parse_report_upgrades_v1_documents(self):
        from repro.observe.sli import parse_report

        bus = EventBus()
        monitor = SliMonitor(bus, window=8)
        bus.publish("unit.outcome", pattern="nvp", ok=True)
        doc = monitor.as_dict()
        legacy = {"schema": "repro-sli-report/v1",
                  "window": doc["window"],
                  "techniques": [
                      {key: value for key, value in row.items()
                       if key not in ("window_span", "throughput")}
                      for row in doc["techniques"]],
                  "stores": doc["stores"]}
        upgraded = parse_report(legacy)
        assert upgraded["schema"] == "repro-sli-report/v2"
        assert upgraded["trials_per_sec"] is None
        assert upgraded["wall_span"] is None
        for row in upgraded["techniques"]:
            assert row["window_span"] is None
            assert row["throughput"] is None
        # A current document passes through unchanged.
        assert parse_report(doc) == doc

    def test_parse_report_rejects_unknown_schema(self):
        from repro.observe.sli import parse_report

        with pytest.raises(ValueError):
            parse_report({"schema": "repro-sli-report/v99"})

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            SliMonitor(window=0)
