"""Unit tests for the deep whole-program pass (repro.lint.deep).

The planted fixtures (tests/fixtures/deep_helpers.py +
deep_planted.py) hide five hazards two call hops away from their entry
points, across a module boundary.  These tests pin the exact findings
the deep pass produces for them — and prove the per-module rules miss
every one.
"""

import json
import os

import pytest

from repro.lint import Baseline, LintEngine, discover_sources, render_github
from repro.lint.deep import (
    Certificate,
    DeepAnalysis,
    SUMMARY_VERSION,
    module_name_for,
    summarize_module,
)
from repro.lint.registry import ModuleSource

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.relpath(os.path.join(HERE, "..", "fixtures"))
HELPERS = os.path.join(FIXTURES, "deep_helpers.py")
PLANTED = os.path.join(FIXTURES, "deep_planted.py")
DEEP_RULES = ("XDET001", "XDET002", "XDET003", "XPROC001", "XPROC002")


def _sources():
    out = []
    for path in (HELPERS, PLANTED):
        with open(path, "r", encoding="utf-8") as handle:
            out.append(ModuleSource.parse(path, handle.read()))
    return out


def _deep_report(**kwargs):
    engine = LintEngine(deep=True, **kwargs)
    return engine.run([HELPERS, PLANTED]), engine


class TestLocalRulesMissThePlants:
    def test_no_local_rule_fires_on_any_plant(self):
        report = LintEngine().run([HELPERS, PLANTED])
        # The only locally visible finding is DET006 on clean_trial's
        # seeded RNG, and it is pragma'd in the fixture.  Every planted
        # hazard — aliased clock, uuid4, os.getenv, Lock(), global
        # mutation — escapes the per-module rules entirely.
        assert report.findings == []
        assert report.pragma_suppressed == 1

    def test_deep_engine_finds_all_five(self):
        report, _ = _deep_report(select=list(DEEP_RULES))
        assert [f.rule for f in report.findings] == list(DEEP_RULES)
        assert all(f.path == PLANTED for f in report.findings)


class TestPinnedTransitiveFindings:
    """Exact JSON payloads for the transitive findings (>= 2 hops)."""

    def _findings(self):
        report, _ = _deep_report(select=list(DEEP_RULES))
        return {f.rule: f.as_dict() for f in report.findings}

    def test_xdet001_clock_via_alias(self):
        assert self._findings()["XDET001"] == {
            "rule": "XDET001", "severity": "warning",
            "path": PLANTED, "line": 32, "col": 0,
            "message": "trial 'clock_trial' transitively reaches "
                       f"wall-clock read time.time() ({HELPERS}:28) via "
                       "annotate -> stamp (2 call hops); results depend "
                       "on when the run happens, not on seeds",
            "chain": [
                {"function": "tests.fixtures.deep_helpers:annotate",
                 "path": PLANTED, "line": 33},
                {"function": "tests.fixtures.deep_helpers:stamp",
                 "path": HELPERS, "line": 51},
                {"hazard": "clock",
                 "detail": "wall-clock read time.time()",
                 "path": HELPERS, "line": 28},
            ],
        }

    def test_xdet002_entropy(self):
        assert self._findings()["XDET002"] == {
            "rule": "XDET002", "severity": "warning",
            "path": PLANTED, "line": 36, "col": 0,
            "message": "trial 'entropy_trial' transitively reaches "
                       f"OS-entropy draw uuid.uuid4() ({HELPERS}:32) "
                       "via labelled -> fresh_token (2 call hops); "
                       "redundant executions draw different values and "
                       "stop being comparable",
            "chain": [
                {"function": "tests.fixtures.deep_helpers:labelled",
                 "path": PLANTED, "line": 37},
                {"function": "tests.fixtures.deep_helpers:fresh_token",
                 "path": HELPERS, "line": 55},
                {"hazard": "rng",
                 "detail": "OS-entropy draw uuid.uuid4()",
                 "path": HELPERS, "line": 32},
            ],
        }

    def test_xproc002_global_mutation(self):
        assert self._findings()["XPROC002"] == {
            "rule": "XPROC002", "severity": "warning",
            "path": PLANTED, "line": 48, "col": 0,
            "message": "trial 'impure_trial' transitively reaches "
                       "mutates module global '_LEDGER.append()' "
                       f"({HELPERS}:44) via audited -> record (2 call "
                       "hops); parallel and serial runs observe "
                       "different global state",
            "chain": [
                {"function": "tests.fixtures.deep_helpers:audited",
                 "path": PLANTED, "line": 49},
                {"function": "tests.fixtures.deep_helpers:record",
                 "path": HELPERS, "line": 67},
                {"hazard": "global",
                 "detail": "mutates module global '_LEDGER.append()'",
                 "path": HELPERS, "line": 44},
            ],
        }

    def test_all_chains_are_two_hops(self):
        for payload in self._findings().values():
            hops = [h for h in payload["chain"] if "function" in h]
            assert len(hops) == 2
            assert payload["chain"][-1].keys() >= {"hazard", "detail"}

    def test_chain_key_absent_from_local_findings(self):
        report = LintEngine().run([os.path.join("src", "repro", "lint",
                                                "engine.py")])
        # Local rules never attach chains, and as_dict omits the key so
        # pre-deep JSON consumers see unchanged payloads.
        engine = LintEngine()
        findings = engine.lint_source("def f(n):\n    return hash(n)\n")
        assert findings and "chain" not in findings[0].as_dict()
        assert report is not None  # engine ran clean over real source


class TestSuppression:
    def test_pragma_on_entry_def_line_suppresses(self, tmp_path):
        (tmp_path / "leaf.py").write_text(
            "from time import time as t\n\n\ndef low():\n"
            "    return t()\n\n\ndef mid():\n    return low()\n")
        (tmp_path / "entry.py").write_text(
            "from leaf import mid\n\n\n"
            "def my_trial(seed):  # lint: allow[XDET001]\n"
            "    return mid()\n")
        report = LintEngine(deep=True).run([str(tmp_path)])
        assert [f.rule for f in report.findings] == []
        assert report.pragma_suppressed == 1

    def test_baseline_roundtrip_and_prune(self, tmp_path):
        engine = LintEngine(deep=True, select=list(DEEP_RULES))
        baseline = engine.run_for_baseline([HELPERS, PLANTED])
        assert len(baseline) == 5

        gated = LintEngine(deep=True, select=list(DEEP_RULES),
                           baseline=baseline)
        report = gated.run([HELPERS, PLANTED])
        assert report.findings == []
        assert report.baseline_suppressed == 5

        # Pruning against a world where only two findings remain drops
        # the other three entries (multiset semantics).
        keep = {e["fingerprint"] for e in baseline.entries[:2]}
        current = {fp: 1 for fp in keep}
        pruned, removed = baseline.pruned(current)
        assert removed == 3
        assert len(pruned) == 2
        assert [e["fingerprint"] for e in pruned.entries] == \
            [e["fingerprint"] for e in baseline.entries[:2]]

    def test_prune_honours_multiplicity(self):
        entries = [{"fingerprint": "aa"}, {"fingerprint": "aa"},
                   {"fingerprint": "bb"}]
        pruned, removed = Baseline(entries).pruned({"aa": 1})
        assert removed == 2
        assert [e["fingerprint"] for e in pruned.entries] == ["aa"]


class TestSummaryCache:
    def test_warm_run_serves_every_module(self, tmp_path):
        from repro.runtime.store import ResultStore

        store_path = str(tmp_path / "summaries.jsonl")
        cold = DeepAnalysis(cache=ResultStore(store_path,
                                              name="lint-deep"))
        cold.run(_sources())
        assert cold.cache_misses == 2 and cold.cache_hits == 0

        warm = DeepAnalysis(cache=ResultStore(store_path,
                                              name="lint-deep"))
        warm_findings = warm.run(_sources())
        assert warm.cache_hits == 2 and warm.cache_misses == 0
        assert warm.stats()["summary_cache"]["hit_rate"] == 1.0
        assert [f.as_dict() for f in warm_findings] == \
            [f.as_dict() for f in cold.findings()]

    def test_edited_module_invalidates_only_itself(self, tmp_path):
        from repro.runtime.store import ResultStore

        store_path = str(tmp_path / "summaries.jsonl")
        DeepAnalysis(cache=ResultStore(store_path,
                                       name="lint-deep")).run(_sources())
        helpers, planted = _sources()
        edited = ModuleSource.parse(
            planted.path, planted.source + "\n\nX_EXTRA = 1\n")
        warm = DeepAnalysis(cache=ResultStore(store_path,
                                              name="lint-deep"))
        warm.run([helpers, edited])
        assert warm.cache_hits == 1 and warm.cache_misses == 1

    def test_report_carries_deep_stats(self, tmp_path):
        from repro.runtime.store import ResultStore

        cache = ResultStore(str(tmp_path / "s.jsonl"), name="lint-deep")
        report, _ = _deep_report(deep_cache=cache)
        assert report.deep["modules"] == 2
        assert report.deep["summary_cache"]["misses"] == 2
        payload = json.loads(
            __import__("repro.lint", fromlist=["render_json"])
            .render_json(report))
        assert payload["deep"]["summary_cache"]["misses"] == 2


class TestCertificateExport:
    def test_certificate_records_every_function(self):
        _, engine = _deep_report()
        cert = Certificate(engine.analysis.certificate())
        name, _ = module_name_for(PLANTED)
        clean = cert.functions[f"{name}:clean_trial"]
        assert clean["deterministic"] and clean["picklable"] \
            and clean["pure"]
        assert "hazards" not in clean
        dirty = cert.functions[f"{name}:impure_trial"]
        assert dirty["pure"] is False
        assert dirty["deterministic"] and dirty["picklable"]
        chain = dirty["hazards"]["purity"]
        assert chain[-1]["detail"] == \
            "mutates module global '_LEDGER.append()'"

    def test_import_graph_edge_recorded(self):
        _, engine = _deep_report()
        payload = engine.analysis.certificate()
        planted_name, _ = module_name_for(PLANTED)
        helpers_name, _ = module_name_for(HELPERS)
        assert payload["modules"][planted_name]["imports"] == \
            [helpers_name]
        assert payload["summary_version"] == SUMMARY_VERSION


class TestDiscoverySkipNotes:
    def test_non_utf8_file_is_skipped_with_note(self, tmp_path):
        (tmp_path / "good.py").write_text("x = 1\n")
        (tmp_path / "binary.py").write_bytes(b"\xff\xfe\x00junk")
        sources, skipped = discover_sources([str(tmp_path)])
        assert [os.path.basename(p) for p, _ in sources] == ["good.py"]
        assert len(skipped) == 1
        assert os.path.basename(skipped[0]["path"]) == "binary.py"
        assert "not UTF-8" in skipped[0]["reason"]

    def test_hidden_files_are_skipped(self, tmp_path):
        (tmp_path / "good.py").write_text("x = 1\n")
        (tmp_path / ".hidden.py").write_text("y = 2\n")
        sources, skipped = discover_sources([str(tmp_path)])
        assert [os.path.basename(p) for p, _ in sources] == ["good.py"]
        assert skipped == []

    def test_report_and_json_surface_skips(self, tmp_path):
        (tmp_path / "good.py").write_text("x = 1\n")
        (tmp_path / "binary.py").write_bytes(b"\xff\xfe\x00junk")
        report = LintEngine().run([str(tmp_path)])
        assert report.files == 2
        assert len(report.skipped) == 1
        from repro.lint import render_json, render_text

        payload = json.loads(render_json(report))
        assert payload["skipped"][0]["path"].endswith("binary.py")
        assert "1 file skipped" in render_text(report)


class TestGithubReporter:
    def test_annotations_and_footer(self):
        report, _ = _deep_report(select=["XDET001"])
        lines = render_github(report).splitlines()
        assert lines[0].startswith(
            f"::warning file={PLANTED},line=32,col=1,title=XDET001::")
        assert lines[-1].startswith("::notice title=repro lint::")

    def test_escaping(self):
        from repro.lint import Finding, LintReport

        finding = Finding(rule="R1", severity="error", path="a,b.py",
                          line=1, col=0, message="bad%thing\nnewline")
        text = render_github(LintReport(findings=[finding], files=1))
        assert "::error file=a%2Cb.py,line=1,col=1,title=R1::" \
               "bad%25thing%0Anewline" in text

    def test_info_maps_to_notice(self):
        from repro.lint import Finding, LintReport

        finding = Finding(rule="R2", severity="info", path="x.py",
                          line=2, col=3, message="fyi")
        assert render_github(
            LintReport(findings=[finding], files=1)).startswith(
            "::notice file=x.py,line=2,col=4,title=R2::fyi")


class TestAliasResolutionUnit:
    """The precise gap the deep pass closes: aliased imports."""

    def test_aliased_clock_is_a_hazard(self, tmp_path):
        path = tmp_path / "m.py"
        path.write_text("from time import time as _wall\n\n\n"
                        "def stamp():\n    return _wall()\n")
        summary = summarize_module(
            ModuleSource.parse(str(path), path.read_text()))
        hazards = summary.functions["stamp"].hazards
        assert [h.kind for h in hazards] == ["clock"]
        assert hazards[0].detail == "wall-clock read time.time()"

    def test_seeded_random_is_clean(self, tmp_path):
        path = tmp_path / "m.py"
        path.write_text("import random\n\n\ndef trial(seed):\n"
                        "    return random.Random(seed).random()\n")
        summary = summarize_module(
            ModuleSource.parse(str(path), path.read_text()))
        assert summary.functions["trial"].hazards == []

    def test_seedless_random_is_not(self, tmp_path):
        path = tmp_path / "m.py"
        path.write_text("import random\n\n\ndef trial():\n"
                        "    return random.Random().random()\n")
        summary = summarize_module(
            ModuleSource.parse(str(path), path.read_text()))
        assert [h.kind for h in summary.functions["trial"].hazards] == \
            ["rng"]


class TestCycleSafety:
    def test_mutually_recursive_clean_functions_converge(self, tmp_path):
        (tmp_path / "m.py").write_text(
            "def even_trial(n):\n    return n == 0 or odd(n - 1)\n\n\n"
            "def odd(n):\n    return n != 0 and even_trial(n - 1)\n")
        report = LintEngine(deep=True).run([str(tmp_path)])
        assert report.findings == []

    def test_cycle_with_hazard_still_flags(self, tmp_path):
        (tmp_path / "m.py").write_text(
            "import uuid\n\n\n"
            "def ping_trial(n):\n    return pong(n)\n\n\n"
            "def pong(n):\n"
            "    if n <= 0:\n        return uuid.uuid4().hex\n"
            "    return ping_trial(n - 1)\n")
        report = LintEngine(deep=True,
                            select=["XDET002"]).run([str(tmp_path)])
        assert [f.rule for f in report.findings] == ["XDET002"]
