"""Unit tests for the taxonomy model, registry, and paper transcription."""

import pytest

from repro.taxonomy import (
    AdjudicatorKind,
    AdjudicatorTiming,
    ArchitecturalPattern,
    FaultClass,
    Intention,
    RedundancyType,
    TaxonomyEntry,
    TechniqueRegistry,
    default_registry,
)
from repro.taxonomy.dimensions import TABLE1_STRUCTURE
from repro.taxonomy.paper import PAPER_TABLE2, paper_entry
from repro.taxonomy.tables import (
    format_table,
    render_diff,
    render_table1,
    render_table2,
)

import repro.techniques  # noqa: F401 - populates the default registry


def _entry(**overrides):
    base = dict(name="Test technique",
                intention=Intention.DELIBERATE,
                rtype=RedundancyType.CODE,
                timing=AdjudicatorTiming.REACTIVE,
                adjudicator=AdjudicatorKind.IMPLICIT,
                faults=(FaultClass.DEVELOPMENT,))
    base.update(overrides)
    return TaxonomyEntry(**base)


class TestTaxonomyEntry:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            _entry(name="")

    def test_requires_faults(self):
        with pytest.raises(ValueError):
            _entry(faults=())

    def test_preventive_forbids_reactive_adjudicator(self):
        with pytest.raises(ValueError):
            _entry(timing=AdjudicatorTiming.PREVENTIVE,
                   adjudicator=AdjudicatorKind.EXPLICIT)

    def test_preventive_cell(self):
        entry = _entry(timing=AdjudicatorTiming.PREVENTIVE,
                       adjudicator=AdjudicatorKind.NONE)
        assert entry.adjudicator_cell == "preventive"

    def test_reactive_cell_wording(self):
        assert _entry().adjudicator_cell == "reactive implicit"
        assert (_entry(adjudicator=AdjudicatorKind.EXPLICIT_OR_IMPLICIT)
                .adjudicator_cell == "reactive expl./impl.")

    def test_faults_cell_joins_in_order(self):
        entry = _entry(faults=(FaultClass.BOHRBUG, FaultClass.MALICIOUS))
        assert entry.faults_cell == "Bohrbugs, malicious"

    def test_matches_ignores_references(self):
        a = _entry(references=("1",))
        b = _entry(references=("2", "3"))
        assert a.matches(b)

    def test_matches_detects_cell_difference(self):
        assert not _entry().matches(
            _entry(adjudicator=AdjudicatorKind.EXPLICIT))

    def test_as_row_shape(self):
        row = _entry().as_row()
        assert row == ("Test technique", "deliberate", "code",
                       "reactive implicit", "development")


class TestRegistry:
    def test_add_requires_taxonomy(self):
        registry = TechniqueRegistry()

        class Bogus:
            pass

        with pytest.raises(TypeError):
            registry.add(Bogus)

    def test_add_and_lookup(self):
        registry = TechniqueRegistry()

        class T:
            TAXONOMY = _entry()

        registry.add(T)
        assert "Test technique" in registry
        assert registry.technique("Test technique") is T
        assert registry.entry("Test technique").matches(_entry())

    def test_duplicate_name_different_class_rejected(self):
        registry = TechniqueRegistry()

        class T1:
            TAXONOMY = _entry()

        class T2:
            TAXONOMY = _entry()

        registry.add(T1)
        with pytest.raises(ValueError):
            registry.add(T2)

    def test_reregistering_same_class_is_idempotent(self):
        registry = TechniqueRegistry()

        class T:
            TAXONOMY = _entry()

        registry.add(T)
        registry.add(T)
        assert len(registry) == 1

    def test_diff_reports_missing(self):
        registry = TechniqueRegistry()
        mismatches = registry.diff_against([_entry()])
        assert len(mismatches) == 1
        name, expected, actual = mismatches[0]
        assert name == "Test technique" and actual is None

    def test_diff_reports_extra(self):
        registry = TechniqueRegistry()

        class T:
            TAXONOMY = _entry()

        registry.add(T)
        mismatches = registry.diff_against([])
        assert mismatches[0][1] is None


class TestPaperTable2:
    def test_seventeen_rows(self):
        assert len(PAPER_TABLE2) == 17

    def test_lookup_by_name(self):
        assert paper_entry("N-version programming").adjudicator \
            is AdjudicatorKind.IMPLICIT

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            paper_entry("Nonexistent technique")

    def test_wrappers_row_matches_paper(self):
        entry = paper_entry("Wrappers")
        assert entry.timing is AdjudicatorTiming.PREVENTIVE
        assert entry.faults == (FaultClass.BOHRBUG, FaultClass.MALICIOUS)

    def test_all_opportunistic_rows(self):
        opportunistic = {e.name for e in PAPER_TABLE2
                         if e.intention is Intention.OPPORTUNISTIC}
        assert opportunistic == {
            "Dynamic service substitution",
            "Fault fixing, genetic programming",
            "Automatic workarounds",
            "Checkpoint-recovery",
            "Reboot and micro-reboot",
        }

    def test_data_redundancy_rows(self):
        data = {e.name for e in PAPER_TABLE2
                if e.rtype is RedundancyType.DATA}
        assert data == {"Robust data structures, audits", "Data diversity",
                        "Data diversity for security"}


class TestGeneratedTable2:
    def test_all_seventeen_registered(self):
        assert len(default_registry) == 17

    def test_generated_matches_paper_exactly(self):
        assert default_registry.diff_against(PAPER_TABLE2) == []

    def test_every_technique_entry_matches_its_paper_row(self):
        for expected in PAPER_TABLE2:
            actual = default_registry.entry(expected.name)
            assert actual.matches(expected), expected.name


class TestRendering:
    def test_format_table_alignment(self):
        text = format_table(("a", "bb"), [("1", "2"), ("333", "4")])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_render_table1_mentions_all_dimensions(self):
        text = render_table1()
        for dimension, _ in TABLE1_STRUCTURE:
            assert dimension in text

    def test_render_table2_contains_all_names(self):
        text = render_table2(PAPER_TABLE2)
        for entry in PAPER_TABLE2:
            assert entry.name in text

    def test_render_diff_empty(self):
        assert "matches" in render_diff([])

    def test_render_diff_nonempty(self):
        text = render_diff([("X", _entry(name="X"), None)])
        assert "MISMATCH" in text and "X" in text
