"""Unit tests for the orchestration control constructs (assign, switch,
while) and a representative end-to-end process."""

import pytest

from repro.components.interface import FunctionSpec
from repro.exceptions import ServiceFailure
from repro.services.process_engine import (
    Assign,
    Invoke,
    OrchestrationEngine,
    Scope,
    Sequence,
    Switch,
    While,
)
from repro.services.registry import ServiceRegistry
from repro.services.service import Service

DOUBLE = FunctionSpec("double", arity=1)


def engine():
    registry = ServiceRegistry()
    registry.publish(Service("doubler", DOUBLE, impl=lambda x: x * 2))
    return OrchestrationEngine(registry)


class TestAssign:
    def test_computes_into_context(self):
        ctx = {"a": 3}
        value = engine().run(Assign("b", lambda c: c["a"] + 1), ctx)
        assert value == 4 and ctx["b"] == 4

    def test_needs_a_key(self):
        with pytest.raises(ValueError):
            Assign("", lambda c: 1)


class TestSwitch:
    def _switch(self):
        return Switch(
            cases=[(lambda c: c["x"] < 0, Assign("sign", lambda c: -1)),
                   (lambda c: c["x"] > 0, Assign("sign", lambda c: 1))],
            otherwise=Assign("sign", lambda c: 0))

    def test_first_matching_case(self):
        ctx = {"x": -5}
        engine().run(self._switch(), ctx)
        assert ctx["sign"] == -1

    def test_otherwise(self):
        ctx = {"x": 0}
        engine().run(self._switch(), ctx)
        assert ctx["sign"] == 0

    def test_no_match_no_otherwise_returns_none(self):
        switch = Switch(cases=[(lambda c: False, Assign("y", lambda c: 1))])
        assert engine().run(switch, {}) is None

    def test_needs_cases_or_otherwise(self):
        with pytest.raises(ValueError):
            Switch(cases=[])


class TestWhile:
    def test_loops_until_condition_fails(self):
        ctx = {"n": 0}
        loop = While(lambda c: c["n"] < 5,
                     Assign("n", lambda c: c["n"] + 1))
        engine().run(loop, ctx)
        assert ctx["n"] == 5

    def test_returns_last_body_result(self):
        ctx = {"n": 0}
        loop = While(lambda c: c["n"] < 3,
                     Assign("n", lambda c: c["n"] + 1))
        assert engine().run(loop, ctx) == 3

    def test_never_entering_returns_none(self):
        assert engine().run(While(lambda c: False,
                                  Assign("x", lambda c: 1)), {}) is None

    def test_runaway_loop_bounded(self):
        loop = While(lambda c: True, Assign("x", lambda c: 1),
                     max_iterations=10)
        with pytest.raises(RuntimeError):
            engine().run(loop, {})

    def test_max_iterations_validated(self):
        with pytest.raises(ValueError):
            While(lambda c: True, Assign("x", lambda c: 1),
                  max_iterations=0)


class TestEndToEndProcess:
    def test_retrying_accumulator_process(self):
        """A realistic process: accumulate doubled values until a
        threshold, degrading gracefully if the service dies midway."""
        registry = ServiceRegistry()
        registry.publish(Service("doubler", DOUBLE, impl=lambda x: x * 2))
        eng = OrchestrationEngine(registry)
        process = Sequence(
            Assign("total", lambda c: 0),
            Assign("i", lambda c: 0),
            While(lambda c: c["total"] < 20,
                  Sequence(
                      Invoke(DOUBLE, args=lambda c: (c["i"],),
                             result_key="doubled"),
                      Assign("total",
                             lambda c: c["total"] + c["doubled"]),
                      Assign("i", lambda c: c["i"] + 1))),
        )
        ctx = {}
        eng.run(process, ctx)
        # 0 + 2 + 4 + 6 + 8 = 20 after i reaches 5
        assert ctx["total"] == 20 and ctx["i"] == 5

    def test_switch_with_fault_scope(self):
        registry = ServiceRegistry()
        registry.publish(Service("dead", DOUBLE, impl=lambda x: x,
                                 availability=0.0))
        eng = OrchestrationEngine(registry)
        process = Scope(
            Switch(cases=[(lambda c: True, Invoke(DOUBLE, args=(1,)))]),
            handlers={ServiceFailure: Assign("fallback", lambda c: True)})
        ctx = {}
        eng.run(process, ctx)
        assert ctx["fallback"] is True
