"""Unit tests for the fault-injection campaign harness."""

import pytest

from repro.faults.development import Bohrbug, Heisenbug, InputRegion
from repro.harness.campaign import CampaignCell, FaultCampaign


def retry_protector(attempts=5):
    """A trivial protector: blind re-execution."""
    def factory(faulty, env):
        def protected(x):
            last = None
            for _ in range(attempts):
                try:
                    return faulty(x, env=env)
                except Exception as exc:
                    last = exc
            raise last
        return protected
    return factory


def fault_menu():
    return {
        "bohrbug": lambda: Bohrbug("b", region=InputRegion(0, 10 ** 9)),
        "heisenbug": lambda: Heisenbug("h", probability=0.5),
        "none": lambda: Heisenbug("quiet", probability=0.0),
    }


class TestCampaign:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultCampaign({}, fault_menu())
        with pytest.raises(ValueError):
            FaultCampaign({"r": retry_protector()}, {})
        with pytest.raises(ValueError):
            FaultCampaign({"r": retry_protector()}, fault_menu(),
                          requests=0)

    def test_baseline_always_present(self):
        campaign = FaultCampaign({"retry": retry_protector()},
                                 fault_menu(), requests=20)
        assert "unprotected" in campaign.protectors

    def test_matrix_covers_all_combinations(self):
        campaign = FaultCampaign({"retry": retry_protector()},
                                 fault_menu(), requests=20)
        matrix = campaign.matrix()
        assert len(matrix) == 2 * 3  # (retry, unprotected) x 3 faults

    def test_retry_beats_baseline_on_heisenbugs_only(self):
        campaign = FaultCampaign({"retry": retry_protector()},
                                 fault_menu(), requests=150, seed=3)
        matrix = campaign.matrix()
        # Heisenbugs: retry survives far more often than the baseline.
        assert (matrix[("retry", "heisenbug")].correct_rate
                > matrix[("unprotected", "heisenbug")].correct_rate + 0.3)
        # Bohrbugs: retry is exactly as helpless as the baseline.
        assert matrix[("retry", "bohrbug")].correct_rate == 0.0
        assert matrix[("unprotected", "bohrbug")].correct_rate == 0.0
        # No fault: everything passes everywhere.
        assert matrix[("retry", "none")].correct_rate == 1.0

    def test_cells_are_fresh_per_combination(self):
        # The same fault label yields a fresh instance per cell, so
        # activation counts cannot bleed across protectors.
        instances = []

        def tracking_factory():
            bug = Bohrbug("b", region=InputRegion(0, 10 ** 9))
            instances.append(bug)
            return bug

        campaign = FaultCampaign({"retry": retry_protector()},
                                 {"bug": tracking_factory}, requests=5)
        campaign.run()
        assert len(instances) == 2

    def test_render_contains_all_labels(self):
        campaign = FaultCampaign({"retry": retry_protector()},
                                 fault_menu(), requests=10)
        text = campaign.render(title="matrix")
        for label in ("matrix", "retry", "unprotected", "bohrbug",
                      "heisenbug"):
            assert label in text

    def test_cell_fields(self):
        campaign = FaultCampaign({"retry": retry_protector()},
                                 fault_menu(), requests=10)
        cell = campaign.run_cell("retry", "none")
        assert isinstance(cell, CampaignCell)
        assert cell.requests == 10
        assert cell.survival_rate == cell.correct_rate == 1.0
