"""Unit tests for voters, acceptance tests, comparators, and monitors."""

import pytest

from repro.adjudicators.acceptance import (
    InverseCheck,
    PredicateAcceptanceTest,
    RangeAcceptanceTest,
    TestSuiteAdjudicator,
)
from repro.adjudicators.comparison import DuplexComparator, ToleranceComparator
from repro.adjudicators.monitors import (
    ExceptionDetector,
    LatencyMonitor,
    QoSMonitor,
)
from repro.adjudicators.voting import (
    ConsensusVoter,
    MajorityVoter,
    MedianVoter,
    PluralityVoter,
    UnanimousVoter,
    WeightedVoter,
)
from repro.exceptions import SimulatedFailure
from repro.result import Outcome


def ok(value, producer=""):
    return Outcome.success(value, producer=producer)


def failed(producer=""):
    return Outcome.failure(SimulatedFailure("x"), producer=producer)


class TestMajorityVoter:
    def test_unanimous(self):
        verdict = MajorityVoter().adjudicate([ok(1, "a"), ok(1, "b"),
                                              ok(1, "c")])
        assert verdict.accepted and verdict.value == 1
        assert set(verdict.supporters) == {"a", "b", "c"}

    def test_majority_masks_minority(self):
        verdict = MajorityVoter().adjudicate([ok(1, "a"), ok(2, "b"),
                                              ok(1, "c")])
        assert verdict.accepted and verdict.value == 1
        assert verdict.dissenters == ("b",)

    def test_failures_count_against_quorum(self):
        # 2 agreeing out of 5 submitted: no majority.
        outcomes = [ok(1), ok(1), failed(), failed(), failed()]
        assert not MajorityVoter().adjudicate(outcomes).accepted

    def test_three_of_five(self):
        outcomes = [ok(1), ok(1), ok(1), failed(), ok(2)]
        assert MajorityVoter().adjudicate(outcomes).accepted

    def test_split_vote_rejected(self):
        outcomes = [ok(1), ok(2), ok(3)]
        assert not MajorityVoter().adjudicate(outcomes).accepted

    def test_empty_rejected(self):
        assert not MajorityVoter().adjudicate([]).accepted

    def test_key_canonicalisation(self):
        voter = MajorityVoter(key=lambda v: round(v, 2))
        verdict = voter.adjudicate([ok(1.001), ok(1.0009), ok(5.0)])
        assert verdict.accepted

    def test_crashing_key_counts_as_failure(self):
        voter = MajorityVoter(key=lambda v: v["k"])
        outcomes = [ok({"k": 1}), ok({"k": 1}), ok(7)]
        verdict = voter.adjudicate(outcomes)
        assert verdict.accepted and verdict.value == {"k": 1}

    def test_adjudication_cost_scales_with_outcomes(self):
        voter = MajorityVoter()
        verdict = voter.adjudicate([ok(1)] * 10)
        assert verdict.cost == pytest.approx(10 * voter.unit_cost)


class TestPluralityVoter:
    def test_accepts_2_1_1(self):
        verdict = PluralityVoter().adjudicate([ok(1), ok(1), ok(2), ok(3)])
        assert verdict.accepted and verdict.value == 1

    def test_tie_rejected(self):
        assert not PluralityVoter().adjudicate([ok(1), ok(1), ok(2),
                                                ok(2)]).accepted

    def test_all_failed_rejected(self):
        assert not PluralityVoter().adjudicate([failed(), failed()]).accepted

    def test_single_success_wins(self):
        verdict = PluralityVoter().adjudicate([ok(9), failed(), failed()])
        assert verdict.accepted and verdict.value == 9


class TestUnanimousVoter:
    def test_agreement(self):
        assert UnanimousVoter().adjudicate([ok(1), ok(1)]).accepted

    def test_any_divergence_rejected(self):
        assert not UnanimousVoter().adjudicate([ok(1), ok(2)]).accepted

    def test_any_failure_rejected(self):
        assert not UnanimousVoter().adjudicate([ok(1), failed()]).accepted


class TestConsensusVoter:
    def test_quorum_met(self):
        voter = ConsensusVoter(quorum=2)
        assert voter.adjudicate([ok(1), ok(1), ok(2), ok(3)]).accepted

    def test_quorum_not_met(self):
        voter = ConsensusVoter(quorum=3)
        assert not voter.adjudicate([ok(1), ok(1), ok(2)]).accepted

    def test_quorum_validated(self):
        with pytest.raises(ValueError):
            ConsensusVoter(quorum=0)


class TestWeightedVoter:
    def test_weight_majority(self):
        voter = WeightedVoter(weights={"trusted": 5.0})
        verdict = voter.adjudicate([ok(1, "trusted"), ok(2, "a"), ok(2, "b")])
        assert verdict.accepted and verdict.value == 1

    def test_unweighted_producers_default_to_one(self):
        voter = WeightedVoter(weights={})
        verdict = voter.adjudicate([ok(1, "a"), ok(1, "b"), ok(2, "c")])
        assert verdict.accepted and verdict.value == 1

    def test_no_weight_majority_rejected(self):
        voter = WeightedVoter(weights={"a": 1.0, "b": 1.0})
        assert not voter.adjudicate([ok(1, "a"), ok(2, "b")]).accepted

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            WeightedVoter(weights={"a": -1})


class TestMedianVoter:
    def test_median_of_odd_set(self):
        verdict = MedianVoter().adjudicate([ok(10.0), ok(11.0), ok(99.0)])
        assert verdict.accepted and verdict.value == 11.0

    def test_outlier_masked(self):
        verdict = MedianVoter().adjudicate([ok(1.0), ok(1.0), ok(1000.0)])
        assert verdict.value == 1.0

    def test_failures_ignored(self):
        verdict = MedianVoter().adjudicate([failed(), ok(3.0), failed()])
        assert verdict.accepted and verdict.value == 3.0

    def test_non_numeric_rejected(self):
        assert not MedianVoter().adjudicate([ok("a"), ok("b")]).accepted


class TestAcceptanceTests:
    def test_predicate(self):
        test = PredicateAcceptanceTest(lambda args, v: v == args[0] * 2)
        assert test.check((3,), ok(6))
        assert not test.check((3,), ok(7))

    def test_failure_never_passes(self):
        test = PredicateAcceptanceTest(lambda args, v: True)
        assert not test.check((3,), failed())

    def test_crashing_test_rejects(self):
        test = PredicateAcceptanceTest(lambda args, v: v["missing"])
        assert not test.check((3,), ok(5))

    def test_range(self):
        test = RangeAcceptanceTest(0, 10)
        assert test.check((1,), ok(5))
        assert not test.check((1,), ok(11))
        assert not test.check((1,), ok("five"))

    def test_range_validated(self):
        with pytest.raises(ValueError):
            RangeAcceptanceTest(10, 0)

    def test_inverse_check(self):
        test = InverseCheck(inverse=lambda y: y * y, tolerance=1e-9)
        assert test.check((16,), ok(4.0))
        assert not test.check((16,), ok(5.0))

    def test_adjudicate_scans_in_order(self):
        test = RangeAcceptanceTest(0, 10)
        outcomes = [Outcome.success(99, producer="bad", args=(1,)),
                    Outcome.success(5, producer="good", args=(1,))]
        verdict = test.adjudicate(outcomes)
        assert verdict.accepted and verdict.value == 5
        assert verdict.supporters == ("good",)
        assert verdict.dissenters == ("bad",)

    def test_test_suite_passing_fraction(self):
        suite = TestSuiteAdjudicator([((2,), 4), ((3,), 9), ((4,), 16)])
        assert suite.passing_fraction(lambda x: x * x) == 1.0
        assert suite.passing_fraction(lambda x: x + 1) == pytest.approx(0)
        assert suite.passing_fraction(lambda x: 4) == pytest.approx(1 / 3)

    def test_test_suite_crashing_candidate_scores_zero(self):
        suite = TestSuiteAdjudicator([((2,), 4)])

        def explode(x):
            raise RuntimeError("bad candidate")

        assert suite.passing_fraction(explode) == 0.0

    def test_test_suite_needs_cases(self):
        with pytest.raises(ValueError):
            TestSuiteAdjudicator([])


class TestComparators:
    def test_duplex_agreement(self):
        verdict = DuplexComparator().adjudicate([ok(1, "a"), ok(1, "b")])
        assert verdict.accepted and set(verdict.supporters) == {"a", "b"}

    def test_duplex_disagreement(self):
        assert not DuplexComparator().adjudicate([ok(1), ok(2)]).accepted

    def test_duplex_requires_exactly_two(self):
        assert not DuplexComparator().adjudicate([ok(1)]).accepted
        assert not DuplexComparator().adjudicate([ok(1)] * 3).accepted

    def test_duplex_failure_rejected(self):
        assert not DuplexComparator().adjudicate([ok(1), failed()]).accepted

    def test_tolerance_comparator(self):
        comp = ToleranceComparator(tolerance=0.01)
        assert comp.adjudicate([ok(1.0), ok(1.005)]).accepted
        assert not comp.adjudicate([ok(1.0), ok(1.5)]).accepted


class TestMonitors:
    def test_exception_detector(self):
        detector = ExceptionDetector()
        assert detector.detected(SimulatedFailure("x"))
        assert not detector.detected(KeyError("x"))
        assert detector.detections == 1

    def test_latency_monitor_degrades(self):
        monitor = LatencyMonitor(threshold=5.0, window=3)
        for latency in (1, 1, 1):
            monitor.observe(latency)
        assert not monitor.degraded
        for latency in (10, 10, 10):
            monitor.observe(latency)
        assert monitor.degraded

    def test_latency_monitor_window_slides(self):
        monitor = LatencyMonitor(threshold=5.0, window=2)
        monitor.observe(100)
        monitor.observe(1)
        monitor.observe(1)
        assert not monitor.degraded

    def test_qos_monitor_error_rate(self):
        monitor = QoSMonitor(latency_threshold=100, error_rate_threshold=0.4,
                             window=4)
        for _ in range(4):
            monitor.observe(failed())
        assert monitor.error_rate == 1.0
        assert monitor.violated

    def test_qos_monitor_reset(self):
        monitor = QoSMonitor(latency_threshold=1, window=2)
        monitor.observe(Outcome.success(1, cost=50))
        monitor.observe(Outcome.success(1, cost=50))
        assert monitor.violated
        monitor.reset()
        assert not monitor.violated


class TestWatchdog:
    def _env(self):
        from repro.environment import SimEnvironment
        return SimEnvironment()

    def test_within_budget_passes_value_through(self):
        from repro.adjudicators.monitors import Watchdog
        env = self._env()
        dog = Watchdog(env, budget=10.0)
        assert dog.guard(lambda: env.do_work(3) or "done") == "done"
        assert dog.detections == 0

    def test_budget_overrun_detected(self):
        from repro.adjudicators.monitors import Watchdog
        from repro.exceptions import HangFailure
        env = self._env()
        dog = Watchdog(env, budget=5.0)
        with pytest.raises(HangFailure):
            dog.guard(lambda: env.do_work(50))
        assert dog.detections == 1

    def test_explicit_hang_detected(self):
        from repro.adjudicators.monitors import Watchdog
        from repro.exceptions import HangFailure
        from repro.faults.base import HANG
        from repro.faults.development import Bohrbug, InputRegion
        from repro.faults.injector import FaultyFunction
        env = self._env()
        hanging = FaultyFunction(
            lambda x: x,
            faults=[Bohrbug("stuck", region=InputRegion(0, 10),
                            effect=HANG)])
        dog = Watchdog(env, budget=100.0)
        with pytest.raises(HangFailure):
            dog.guard(hanging, 5, env=env)
        assert dog.detections == 1

    def test_budget_validated(self):
        from repro.adjudicators.monitors import Watchdog
        with pytest.raises(ValueError):
            Watchdog(self._env(), budget=0)
