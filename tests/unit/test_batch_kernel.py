"""Batch kernel: scalar-vs-batched byte-identity and exact folding.

The batched path's whole contract is that it changes *nothing* but the
cost: for any batch size — 1, all, ragged tails — ``run_trials`` and
``summarize`` reproduce the scalar path byte for byte, including
instrumented telemetry digests, on every pool backend.  Counter-based
seed streams are pinned across ``PYTHONHASHSEED`` values in a
subprocess, and the exact single-pass :class:`MetricAccumulator` is
checked bit for bit against ``statistics.fmean`` / ``statistics.stdev``.
"""

import os
import pathlib
import statistics
import subprocess
import sys

import pytest

from repro import observe
from repro.harness.experiment import (
    Experiment,
    TrialResult,
    run_trials,
    summarize,
)
from repro.runtime.kernel import (
    BatchResult,
    MetricAccumulator,
    partition,
    run_batch,
    seed_range,
    trial_seed,
    trial_stream,
)
from repro.runtime.store import MISS, ResultStore

SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")


# -- module-level (picklable) sample trials --


def counter_trial(seed):
    """Draws through the sanctioned counter-based stream."""
    rng = trial_stream(seed, 0)
    metrics = {"value": rng.random(), "noise": rng.gauss(0.0, 1.0)}
    if seed % 3 == 0:
        metrics["rare"] = float(seed)
    return metrics


def plain_trial(seed):
    return {"value": seed * 2.0, "tag": seed % 5}


def divergent_order_trial(seed):
    """Odd seeds report their metrics in reversed key order."""
    if seed % 2:
        return {"b": seed + 0.5, "a": float(seed)}
    return {"a": float(seed), "b": seed + 0.5}


def publishing_trial(seed):
    tel = observe.current()
    if tel.enabled:
        tel.publish("unit.outcome", ok=seed % 2 == 0, technique="batch")
        tel.metrics.inc("repro_trials_total")
    return {"ok": float(seed % 2 == 0)}


SEEDS = tuple(range(17))


# -- counter-based seed streams --


class TestCounterSeeds:
    def test_seed_depends_only_on_base_and_index(self):
        assert trial_seed(7, 3) == trial_seed(7, 3)
        assert trial_seed(7, 3) != trial_seed(7, 4)
        assert trial_seed(7, 3) != trial_seed(8, 3)

    def test_seed_range_matches_pointwise_derivation(self):
        seeds = seed_range(11, 6)
        assert seeds == tuple(trial_seed(11, i) for i in range(6))
        # Slicing the range never changes any individual seed.
        assert seed_range(11, 3, start=2) == seeds[2:5]

    def test_streams_are_partition_invariant(self):
        draws = [trial_stream(5, i).random() for i in range(8)]
        # Re-deriving any single stream reproduces its draw, no matter
        # how many trials "ran" before it.
        assert trial_stream(5, 6).random() == draws[6]

    def test_seeds_are_hashseed_stable_across_interpreters(self):
        script = (
            "from repro.runtime.kernel import seed_range\n"
            "print(seed_range(42, 4))\n"
        )
        outputs = set()
        for hash_seed in ("0", "1", "31337"):
            env = dict(os.environ, PYTHONPATH=SRC,
                       PYTHONHASHSEED=hash_seed)
            result = subprocess.run(
                [sys.executable, "-c", script], env=env,
                capture_output=True, text=True, check=True)
            outputs.add(result.stdout)
        assert len(outputs) == 1
        assert outputs.pop().strip() == repr(seed_range(42, 4))


class TestPartition:
    def test_partition_concatenates_back_exactly(self):
        batches = partition(SEEDS, 4)
        assert [len(b) for b in batches] == [4, 4, 4, 4, 1]
        assert tuple(s for b in batches for s in b) == SEEDS

    def test_degenerate_sizes(self):
        assert partition(SEEDS, 1) == [(s,) for s in SEEDS]
        assert partition(SEEDS, len(SEEDS)) == [SEEDS]
        assert partition(SEEDS, 10 ** 6) == [SEEDS]
        assert partition((), 3) == []

    def test_nonpositive_batch_is_rejected(self):
        with pytest.raises(ValueError):
            partition(SEEDS, 0)


# -- scalar-vs-batched byte-identity --


class TestByteIdentity:
    def test_batched_run_trials_is_byte_identical(self):
        scalar = run_trials(counter_trial, SEEDS)
        for batch in (1, 4, 5, len(SEEDS)):
            batched = run_trials(counter_trial, SEEDS, batch=batch)
            assert repr(batched) == repr(scalar)

    def test_batched_summaries_are_byte_identical(self):
        scalar = summarize(run_trials(counter_trial, SEEDS))
        for batch in (1, 3, len(SEEDS)):
            experiment = Experiment(name="b", trial=counter_trial,
                                    seeds=SEEDS, batch=batch)
            assert repr(experiment.summary()) == repr(scalar)

    def test_instrumented_digests_are_byte_identical(self):
        scalar = Experiment(name="i", trial=publishing_trial,
                            seeds=SEEDS, instrument=True).run()
        assert all(r.telemetry is not None for r in scalar)
        for batch in (1, 4, len(SEEDS)):
            batched = Experiment(name="i", trial=publishing_trial,
                                 seeds=SEEDS, instrument=True,
                                 batch=batch).run()
            assert repr(batched) == repr(scalar)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_pool_backends_are_byte_identical(self, backend):
        scalar = run_trials(counter_trial, SEEDS)
        batched = run_trials(counter_trial, SEEDS, workers=2,
                             backend=backend, batch=4)
        assert repr(batched) == repr(scalar)

    def test_divergent_key_orders_are_replayed(self):
        scalar = run_trials(divergent_order_trial, SEEDS)
        batched = run_trials(divergent_order_trial, SEEDS, batch=6)
        assert repr(batched) == repr(scalar)
        # The divergence really was recorded, not accidentally absent.
        (batch,) = Experiment(name="d", trial=divergent_order_trial,
                              seeds=SEEDS,
                              batch=len(SEEDS)).run_batches()
        assert batch.key_orders
        assert batch.key_orders[1] == ("b", "a")
        assert list(batch.trial_metrics(1)) == ["b", "a"]
        assert list(batch.trial_metrics(2)) == ["a", "b"]


# -- the batch record --


class TestBatchResult:
    def test_columns_are_struct_of_arrays(self):
        (batch,) = Experiment(name="soa", trial=counter_trial,
                              seeds=SEEDS, batch=len(SEEDS)).run_batches()
        assert len(batch) == len(SEEDS)
        assert set(batch.columns) == {"value", "noise", "rare"}
        assert batch.columns["value"].typecode == "d"
        assert batch.rows["rare"].typecode == "q"
        # Sparse metric: only every third trial reported "rare".
        assert list(batch.rows["rare"]) == [0, 3, 6, 9, 12, 15]

    def test_results_expand_to_scalar_trial_results(self):
        batch = run_batch(plain_trial, False, SEEDS[:5])
        expanded = batch.results()
        assert all(isinstance(r, TrialResult) for r in expanded)
        assert [r.seed for r in expanded] == list(SEEDS[:5])
        assert expanded[2].metrics == plain_trial(SEEDS[2])


# -- the batch store path --


class TestBatchStore:
    def test_warm_run_serves_whole_batches(self, tmp_path):
        log = tmp_path / "store.jsonl"
        cold = Experiment(name="s", trial=counter_trial, seeds=SEEDS,
                          batch=4, store=ResultStore(log, name="unit"))
        first = cold.run()
        warm_store = ResultStore(log, name="unit")
        warm = Experiment(name="s", trial=counter_trial, seeds=SEEDS,
                          batch=4, store=warm_store)
        assert repr(warm.run()) == repr(first)
        stats = warm_store.stats()
        assert stats["hits"] == 5 and stats["misses"] == 0
        assert stats["writes"] == 0
        assert stats["trials_served"] == len(SEEDS)

    def test_batch_size_is_part_of_the_key(self, tmp_path):
        log = tmp_path / "store.jsonl"
        Experiment(name="s", trial=counter_trial, seeds=SEEDS, batch=4,
                   store=ResultStore(log, name="unit")).run()
        other = ResultStore(log, name="unit")
        Experiment(name="s", trial=counter_trial, seeds=SEEDS, batch=5,
                   store=other).run()
        # A different partition addresses different records: all miss.
        stats = other.stats()
        assert stats["hits"] == 0 and stats["misses"] == 4
        assert stats["trials_stored"] == len(SEEDS)

    def test_partial_hits_compute_only_missing_batches(self, tmp_path):
        log = tmp_path / "store.jsonl"
        Experiment(name="s", trial=counter_trial, seeds=SEEDS[:8],
                   batch=4, store=ResultStore(log, name="unit")).run()
        grown = ResultStore(log, name="unit")
        results = Experiment(name="s", trial=counter_trial, seeds=SEEDS,
                             batch=4, store=grown).run()
        assert repr(results) == repr(run_trials(counter_trial, SEEDS))
        stats = grown.stats()
        assert stats["hits"] == 2 and stats["misses"] == 3

    def test_batch_traffic_reaches_the_sli_table(self, tmp_path):
        log = tmp_path / "store.jsonl"
        Experiment(name="s", trial=counter_trial, seeds=SEEDS, batch=4,
                   store=ResultStore(log, name="unit")).run()
        with observe.session() as tel:
            monitor = observe.SliMonitor(tel.bus)
            Experiment(name="s", trial=counter_trial, seeds=SEEDS,
                       batch=4, store=ResultStore(log, name="unit")).run()
        (row,) = monitor.store_rows()
        assert row["hits"] == 5
        assert row["trials_served"] == len(SEEDS)
        assert "trials served" in monitor.render()


class TestGetMany:
    def test_get_many_mirrors_get(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl", name="unit")
        keys = [store.key("task", (i,)) for i in range(4)]
        store.put(keys[1], "one")
        store.put(keys[3], "three")
        found = store.get_many(keys)
        assert found[keys[0]] is MISS and found[keys[2]] is MISS
        assert found[keys[1]] == "one" and found[keys[3]] == "three"
        stats = store.stats()
        assert stats["hits"] == 2 and stats["misses"] == 2

    def test_get_many_sees_foreign_appends(self, tmp_path):
        log = tmp_path / "s.jsonl"
        ours = ResultStore(log, name="unit")
        key = ours.key("task", ("x",))
        assert ours.get_many([key])[key] is MISS
        theirs = ResultStore(log, name="unit")
        theirs.put(key, "from-elsewhere")
        # One refresh picks up the record another process appended.
        assert ours.get_many([key])[key] == "from-elsewhere"


# -- exact single-pass aggregation --


class TestMetricAccumulator:
    def _values(self, rng, count):
        return [rng.uniform(-1000, 1000) for _ in range(count)]

    def test_mean_matches_fmean_bit_for_bit(self):
        rng = trial_stream(1, 0)
        for count in (1, 2, 7, 100):
            values = self._values(rng, count)
            accumulator = MetricAccumulator()
            accumulator.update(values)
            assert accumulator.mean() == statistics.fmean(values)

    @pytest.mark.skipif(sys.version_info < (3, 11),
                        reason="stdev uses exact sqrt only on 3.11+")
    def test_stdev_matches_statistics_bit_for_bit(self):
        rng = trial_stream(2, 0)
        for count in (2, 3, 11, 100):
            values = self._values(rng, count)
            accumulator = MetricAccumulator()
            accumulator.update(values)
            assert accumulator.stdev() == statistics.stdev(values)

    def test_single_sample_stdev_is_zero(self):
        accumulator = MetricAccumulator()
        accumulator.add(3.25)
        assert accumulator.stdev() == 0.0
        assert accumulator.count == 1

    def test_merge_is_order_independent(self):
        rng = trial_stream(3, 0)
        values = self._values(rng, 20)
        whole = MetricAccumulator()
        whole.update(values)
        left, right = MetricAccumulator(), MetricAccumulator()
        left.update(values[:7])
        right.update(values[7:])
        right.merge(left)  # merge in the "wrong" order on purpose
        assert right.count == whole.count
        assert right.mean() == whole.mean()
        assert right.stdev() == whole.stdev()

    def test_summarize_accepts_mixed_result_kinds(self):
        scalars = run_trials(counter_trial, SEEDS[:8])
        batches = Experiment(name="m", trial=counter_trial,
                             seeds=SEEDS[8:], batch=3).run_batches()
        mixed = summarize([*scalars, *batches])
        assert mixed == summarize(run_trials(counter_trial, SEEDS))

    def test_summarize_of_nothing_is_empty(self):
        assert summarize([]) == {}
