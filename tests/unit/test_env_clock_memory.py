"""Unit tests for the virtual clock and the simulated heap."""

import pytest

from repro.environment.clock import Stopwatch, VirtualClock
from repro.environment.memory import SimulatedHeap
from repro.exceptions import AgingFailure, MemoryViolation


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(3)
        clock.advance(4.5)
        assert clock.now == 7.5

    def test_no_negative_advance(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_no_negative_start(self):
        with pytest.raises(ValueError):
            VirtualClock(start=-5)

    def test_reset(self):
        clock = VirtualClock(start=10)
        clock.reset()
        assert clock.now == 0.0

    def test_stopwatch_measures_elapsed(self):
        clock = VirtualClock()
        watch = Stopwatch(clock)
        clock.advance(9)
        assert watch.elapsed == 9
        watch.restart()
        assert watch.elapsed == 0


class TestHeapAllocation:
    def test_alloc_and_free(self):
        heap = SimulatedHeap(capacity=100)
        block = heap.alloc(10, owner="me")
        assert heap.allocated_cells == 10
        assert heap.live_blocks == 1
        heap.free(block)
        assert heap.allocated_cells == 0

    def test_alloc_positive_size(self):
        with pytest.raises(ValueError):
            SimulatedHeap().alloc(0)

    def test_exhaustion_raises_aging_failure(self):
        heap = SimulatedHeap(capacity=16)
        heap.alloc(10)
        with pytest.raises(AgingFailure):
            heap.alloc(10)

    def test_double_free_detected(self):
        heap = SimulatedHeap()
        block = heap.alloc(4)
        heap.free(block)
        with pytest.raises(MemoryViolation):
            heap.free(block)

    def test_leak_keeps_cells_allocated(self):
        heap = SimulatedHeap(capacity=32)
        block = heap.alloc(8)
        heap.leak(block)
        assert heap.leaked_cells == 8
        assert heap.allocated_cells == 8

    def test_pressure(self):
        heap = SimulatedHeap(capacity=100)
        heap.alloc(25)
        assert heap.pressure == 0.25

    def test_pad_counts_against_capacity(self):
        heap = SimulatedHeap(capacity=20, default_pad=4)
        heap.alloc(6)
        assert heap.allocated_cells == 10


class TestHeapAccess:
    def test_read_write_within_bounds(self):
        heap = SimulatedHeap()
        block = heap.alloc(4)
        heap.write(block, 2, 99)
        assert heap.read(block, 2) == 99

    def test_out_of_bounds_read_raises(self):
        heap = SimulatedHeap()
        block = heap.alloc(4)
        with pytest.raises(MemoryViolation):
            heap.read(block, 4)

    def test_checked_write_raises_on_overflow(self):
        heap = SimulatedHeap()
        block = heap.alloc(4)
        with pytest.raises(MemoryViolation):
            heap.write(block, 4, 1, checked=True)

    def test_unchecked_overflow_into_pad_is_absorbed(self):
        heap = SimulatedHeap(default_pad=4)
        block = heap.alloc(4)
        heap.write(block, 5, 1)  # lands in pad
        assert heap.smash_count == 0

    def test_unchecked_overflow_smashes_neighbour(self):
        heap = SimulatedHeap()
        a = heap.alloc(4)
        b = heap.alloc(4)
        heap.write(a, 4, 77)  # first cell of b
        assert heap.smash_count == 1
        assert b.corrupted
        assert heap.read(b, 0) == 77

    def test_negative_offset_rejected(self):
        heap = SimulatedHeap()
        block = heap.alloc(4)
        with pytest.raises(MemoryViolation):
            heap.write(block, -1, 0)


class TestHeapLifecycle:
    def test_rejuvenate_reclaims_everything(self):
        heap = SimulatedHeap(capacity=64)
        for _ in range(3):
            heap.leak(heap.alloc(8))
        reclaimed = heap.rejuvenate()
        assert reclaimed == 24
        assert heap.leaked_cells == 0
        assert heap.allocated_cells == 0
        # allocation works again
        heap.alloc(32)

    def test_capture_restore_roundtrip(self):
        heap = SimulatedHeap(capacity=64)
        a = heap.alloc(4, owner="a")
        heap.write(a, 1, 42)
        heap.leak(heap.alloc(8))
        state = heap.capture()
        heap.rejuvenate()
        assert heap.allocated_cells == 0
        heap.restore(state)
        assert heap.allocated_cells == 12
        assert heap.leaked_cells == 8
        restored = heap.block_at(a.address)
        assert restored.data[1] == 42

    def test_restore_is_deep(self):
        heap = SimulatedHeap()
        a = heap.alloc(4)
        state = heap.capture()
        heap.write(a, 0, 5)
        heap.restore(state)
        assert heap.read(heap.block_at(a.address), 0) == 0
