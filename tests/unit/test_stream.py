"""Delta-snapshot streaming: schemas, the collector, and byte-identity.

The contract under test (see docs/OBSERVABILITY.md): a streamed map
call's canonical session — each chunk's ``repro-delta/v1`` documents
folded in emission order at gather time — is byte-identical to the
plain captured run, on every backend.  Workload costs are dyadic and
every trial binds the session to its environment's virtual clock, the
same discipline as ``test_parallel_telemetry``.
"""

import pytest

from repro import observe
from repro.environment import SimEnvironment
from repro.observe.stream import (DELTA_SCHEMA, FRAME_SCHEMA,
                                  LiveDashboard, StreamCollector,
                                  TelemetryStream, make_delta,
                                  validate_delta, validate_frame)
from repro.runtime.pmap import ParallelMap

#: Pool self-metrics are backend- and transport-dependent by design;
#: the byte-identity contract covers the workload series only.
EXCLUDE = ("repro_runtime_",)


# -- module-level (picklable) building blocks for the process backend --


def stream_trial(seed):
    """A telemetry-rich pure trial with dyadic costs only."""
    env = SimEnvironment(seed=seed)
    tel = observe.current()
    if tel.enabled:
        tel.bind_clock(env.clock)
        tel.count("stream_trials_total")
        with tel.span("stream.trial", cost=1.0):
            tel.publish("stream.tick", seed=seed)
            env.clock.advance(0.5)
    return seed * 2


def _fingerprint(tel):
    """The three byte-identity surfaces of one session."""
    return (
        tel.metrics.render_prometheus(exclude=EXCLUDE),
        [span.to_dict() for span in tel.tracer.spans],
        [(e.topic, e.time, e.seq, e.payload) for e in tel.bus.history],
    )


def _run(backend, stream=None, workers=3, seeds=range(9)):
    """One run under a session; returns (session, pool)."""
    pool = ParallelMap(workers=1 if backend == "serial" else workers,
                       backend=backend, chunk_size=3, stream=stream)
    with observe.session() as tel:
        results = pool.map(stream_trial, list(seeds))
    assert results == [seed * 2 for seed in seeds]
    return tel, pool


def _snapshot(*counters):
    """A minimal real snapshot document for schema/collector tests."""
    tel = observe.Telemetry()
    for name in counters:
        tel.count(name)
    return tel.snapshot()


# -- schemas -----------------------------------------------------------


class TestDeltaSchema:
    def test_make_delta_validates(self):
        delta = make_delta((1, 0), 0, _snapshot("unit_total"))
        validate_delta(delta)
        assert delta["schema"] == DELTA_SCHEMA
        assert delta["final"] is False

    def test_rejects_wrong_schema_and_missing_keys(self):
        with pytest.raises(ValueError):
            validate_delta({"schema": "repro-delta/v2"})
        delta = make_delta((1, 0), 0, _snapshot())
        del delta["origin"]
        with pytest.raises(ValueError):
            validate_delta(delta)

    def test_rejects_bad_snapshot_and_negative_seq(self):
        with pytest.raises(ValueError):
            validate_delta(make_delta((1, 0), 0, {"schema": "nope"}))
        bad = make_delta((1, 0), 0, _snapshot())
        bad["seq"] = -1
        with pytest.raises(ValueError):
            validate_delta(bad)


# -- the collector -----------------------------------------------------


class TestStreamCollector:
    def test_take_returns_emission_order(self):
        collector = StreamCollector()
        second = make_delta((1, 0), 1, _snapshot("b_total"), final=True)
        first = make_delta((1, 0), 0, _snapshot("a_total"))
        collector.offer(second)  # arrival order != emission order
        collector.offer(first)
        deltas = collector.take((1, 0), 2, timeout=1.0)
        assert [d["seq"] for d in deltas] == [0, 1]
        assert collector.pending() == 0

    def test_take_times_out_on_missing_deltas(self):
        collector = StreamCollector()
        collector.offer(make_delta((1, 0), 0, _snapshot()))
        with pytest.raises(RuntimeError, match="wedged"):
            collector.take((1, 0), 2, timeout=0.05)

    def test_discard_drops_buffered_and_late_deltas(self):
        collector = StreamCollector()
        collector.offer(make_delta((1, 0), 0, _snapshot()))
        assert collector.discard((1, 0)) == 1
        # A straggler for the abandoned origin is dropped on arrival.
        collector.offer(make_delta((1, 0), 1, _snapshot(), final=True))
        stats = collector.stats()
        assert stats["dropped"] == 2
        assert stats["pending"] == 0

    def test_invalid_deltas_are_counted_not_raised(self):
        collector = StreamCollector()
        collector.offer({"schema": "garbage"})
        assert collector.stats()["invalid"] == 1
        assert collector.pending() == 0

    def test_list_origins_from_pickling_transports_match_tuples(self):
        collector = StreamCollector()
        delta = make_delta([2, 1], 0, _snapshot(), final=True)
        collector.offer(delta)  # origin arrived as a JSON-style list
        assert len(collector.take((2, 1), 1, timeout=1.0)) == 1

    def test_live_view_folds_in_arrival_order(self):
        live = observe.Telemetry()
        collector = StreamCollector(live=live)
        collector.offer(make_delta((1, 0), 0, _snapshot("live_total")))
        collector.offer(make_delta((1, 0), 1, _snapshot("live_total"),
                                   final=True))
        assert live.metrics.value("live_total") == 2
        assert collector.stats()["folded_live"] == 2


# -- streamed byte-identity --------------------------------------------


class TestStreamedByteIdentity:
    def test_streamed_folds_identical_across_backends(self):
        plain, _ = _run("serial")
        expected = _fingerprint(plain)
        for backend in ("serial", "thread", "process"):
            tel, pool = _run(backend, stream=TelemetryStream(every=2))
            assert _fingerprint(tel) == expected, backend
            assert pool.stats.streamed_chunks == pool.stats.chunks
            assert pool.stats.deltas_merged >= pool.stats.chunks
            assert pool.stats.deltas_dropped == 0
            assert pool.stream.collector.pending() == 0

    def test_serial_streamed_path_counts_one_chunk(self):
        stream = TelemetryStream(every=2)
        tel, pool = _run("serial", stream=stream)
        assert pool.stats.chunks == 1
        assert pool.stats.captured_chunks == 1
        assert pool.stats.streamed_chunks == 1
        # 9 items at every=2 -> 4 interim deltas + the final tail one.
        assert pool.stats.deltas_merged == 5

    def test_stream_is_reusable_across_map_calls(self):
        stream = TelemetryStream(every=2)
        first, _ = _run("thread", stream=stream)
        second, _ = _run("thread", stream=stream)
        assert _fingerprint(first) == _fingerprint(second)
        assert stream.collector.pending() == 0

    def test_activate_twice_raises(self):
        stream = TelemetryStream()
        stream.activate("thread")
        try:
            with pytest.raises(RuntimeError, match="already active"):
                stream.activate("thread")
        finally:
            stream.deactivate()

    def test_every_must_be_positive(self):
        with pytest.raises(ValueError):
            TelemetryStream(every=0)

    def test_live_view_sees_the_same_workload_totals(self):
        live = observe.Telemetry()
        stream = TelemetryStream(every=2, live=live)
        tel, _ = _run("thread", stream=stream)
        # Arrival order is nondeterministic, so histories may differ —
        # but the folded totals are commutative and must agree.
        assert live.metrics.value("stream_trials_total") == \
            tel.metrics.value("stream_trials_total")
        assert live.bus.counts == tel.bus.counts

    def test_disabled_session_streams_nothing(self):
        pool = ParallelMap(workers=2, backend="thread", chunk_size=3,
                           stream=TelemetryStream(every=2))
        results = pool.map(stream_trial, list(range(6)))
        assert results == [seed * 2 for seed in range(6)]
        assert pool.stats.streamed_chunks == 0
        assert pool.stats.deltas_merged == 0


class TestHashSeedStability:
    def test_streamed_dump_is_hashseed_independent(self):
        import pathlib
        import subprocess
        import sys

        script = (
            "import sys; sys.path.insert(0, {src!r});"
            "sys.path.insert(0, {here!r});"
            "from test_stream import _run, _fingerprint, EXCLUDE;"
            "from repro.observe.stream import TelemetryStream;"
            "tel, _ = _run('process', stream=TelemetryStream(every=2));"
            "print(tel.metrics.render_prometheus(exclude=EXCLUDE))"
        ).format(src=str(pathlib.Path(__file__).resolve()
                         .parents[2] / "src"),
                 here=str(pathlib.Path(__file__).resolve().parent))
        dumps = set()
        for seed in ("0", "4242"):
            proc = subprocess.run(
                [sys.executable, "-c", script], capture_output=True,
                text=True, env={"PYTHONHASHSEED": seed,
                                "PATH": __import__("os").environ["PATH"]})
            assert proc.returncode == 0, proc.stderr
            dumps.add(proc.stdout)
        assert len(dumps) == 1


# -- dashboard frames --------------------------------------------------


class TestLiveDashboard:
    def _dashboard(self, collector=None):
        from repro.observe.sli import SliMonitor

        live = observe.Telemetry()
        monitor = SliMonitor(live.bus, window=16)
        live.bus.publish("unit.outcome", pattern="nvp", ok=True)
        return LiveDashboard(monitor, collector=collector,
                             cells_total=4,
                             counts=lambda: dict(live.bus.counts))

    def test_frames_validate_and_number_sequentially(self):
        dash = self._dashboard(collector=StreamCollector())
        first = dash.frame()
        second = dash.frame()
        validate_frame(first)
        validate_frame(second)
        assert first["schema"] == FRAME_SCHEMA
        assert (first["seq"], second["seq"]) == (0, 1)
        assert first["final"] is False
        assert first["cells"] == {"done": 0, "total": 4}
        assert first["stream"]["received"] == 0
        # No injected wall clock: elapsed stays None (DET005 — the
        # observe package never reads a process clock itself).
        assert first["elapsed_sec"] is None

    def test_final_frame_embeds_the_report(self):
        dash = self._dashboard()
        final = dash.frame(final=True, report={"schema": "x"})
        validate_frame(final)
        assert final["report"] == {"schema": "x"}

    def test_validate_frame_rejects_final_without_report(self):
        dash = self._dashboard()
        final = dash.frame(final=True, report={"schema": "x"})
        del final["report"]
        with pytest.raises(ValueError):
            validate_frame(final)

    def test_validate_frame_rejects_missing_keys(self):
        dash = self._dashboard()
        frame = dash.frame()
        del frame["sli"]
        with pytest.raises(ValueError):
            validate_frame(frame)
        with pytest.raises(ValueError):
            validate_frame({"schema": "not-a-frame"})
