"""Unit tests for development faults (Bohrbugs, Heisenbugs, aging)."""

import pytest

from repro.environment import SimEnvironment
from repro.exceptions import (
    AgingFailure,
    BohrbugFailure,
    HangFailure,
    HeisenbugFailure,
)
from repro.faults.base import CRASH, HANG, WRONG_VALUE
from repro.faults.development import (
    AgingBug,
    Bohrbug,
    Heisenbug,
    InputRegion,
    LeakFault,
)


class TestInputRegion:
    def test_contains_half_open(self):
        region = InputRegion(10, 20)
        assert region.contains(10)
        assert region.contains(19.9)
        assert not region.contains(20)
        assert not region.contains(9)

    def test_non_numeric_never_contained(self):
        assert not InputRegion(0, 10).contains("five")

    def test_empty_region_rejected(self):
        with pytest.raises(ValueError):
            InputRegion(5, 5)

    def test_width(self):
        assert InputRegion(2, 7).width == 5


class TestBohrbug:
    def test_region_activation_is_deterministic(self):
        bug = Bohrbug("b", region=InputRegion(0, 100))
        for _ in range(3):
            assert bug.activates((50,), None)
            assert not bug.activates((200,), None)

    def test_predicate_activation(self):
        bug = Bohrbug("b", predicate=lambda args: args[0] % 2 == 0)
        assert bug.activates((4,), None)
        assert not bug.activates((5,), None)

    def test_exactly_one_trigger_required(self):
        with pytest.raises(ValueError):
            Bohrbug("b")
        with pytest.raises(ValueError):
            Bohrbug("b", region=InputRegion(0, 1),
                    predicate=lambda args: True)

    def test_crash_effect(self):
        bug = Bohrbug("b", region=InputRegion(0, 10), effect=CRASH)
        with pytest.raises(BohrbugFailure):
            bug.manifest((5,), 25)

    def test_wrong_value_effect_is_stable_and_wrong(self):
        bug = Bohrbug("b", region=InputRegion(0, 10), effect=WRONG_VALUE)
        first = bug.manifest((5,), 25)
        second = bug.manifest((5,), 25)
        assert first == second
        assert first != 25

    def test_hang_effect(self):
        bug = Bohrbug("b", region=InputRegion(0, 10), effect=HANG)
        with pytest.raises(HangFailure):
            bug.manifest((5,), 25)

    def test_unknown_effect_rejected(self):
        with pytest.raises(ValueError):
            Bohrbug("b", region=InputRegion(0, 1), effect="explode")

    def test_activation_counter(self):
        bug = Bohrbug("b", region=InputRegion(0, 10), effect=WRONG_VALUE)
        bug.maybe_manifest((5,), None, 1)
        bug.maybe_manifest((50,), None, 1)
        assert bug.activations == 1


class TestHeisenbug:
    def test_never_activates_without_environment(self):
        bug = Heisenbug("h", probability=1.0)
        assert not bug.activates((1,), None)

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            Heisenbug("h", probability=1.5)
        with pytest.raises(ValueError):
            Heisenbug("h", probability=0.5, aging_factor=-1)

    def test_activation_rate_tracks_probability(self):
        env = SimEnvironment(seed=0)
        bug = Heisenbug("h", probability=0.3)
        hits = sum(bug.activates((1,), env) for _ in range(5000))
        assert 0.25 < hits / 5000 < 0.35

    def test_certain_heisenbug(self):
        env = SimEnvironment(seed=0)
        bug = Heisenbug("h", probability=1.0)
        assert bug.activates((1,), env)

    def test_aging_boosts_probability(self):
        env = SimEnvironment(seed=0)
        bug = Heisenbug("h", probability=0.1, aging_factor=0.001)
        env.do_work(500)
        assert bug.effective_probability(env) == pytest.approx(0.6)

    def test_effective_probability_capped(self):
        env = SimEnvironment(seed=0)
        env.do_work(10_000)
        bug = Heisenbug("h", probability=0.5, aging_factor=1.0)
        assert bug.effective_probability(env) == 1.0


class TestAgingBug:
    def test_dormant_when_fresh(self):
        env = SimEnvironment(seed=0)
        bug = AgingBug("a", max_probability=0.9, age_to_saturation=100)
        assert bug.effective_probability(env) == 0.0

    def test_ramps_linearly(self):
        env = SimEnvironment(seed=0)
        bug = AgingBug("a", max_probability=0.8, age_to_saturation=100)
        env.do_work(50)
        assert bug.effective_probability(env) == pytest.approx(0.4)

    def test_saturates(self):
        env = SimEnvironment(seed=0)
        bug = AgingBug("a", max_probability=0.8, age_to_saturation=100)
        env.do_work(1000)
        assert bug.effective_probability(env) == pytest.approx(0.8)

    def test_rejuvenation_resets_hazard(self):
        env = SimEnvironment(seed=0)
        bug = AgingBug("a", max_probability=0.8, age_to_saturation=100)
        env.do_work(500)
        env.rejuvenate()
        assert bug.effective_probability(env) == 0.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AgingBug("a", max_probability=2.0)
        with pytest.raises(ValueError):
            AgingBug("a", age_to_saturation=0)


class TestLeakFault:
    def test_leaks_cells_without_failing_the_call(self):
        env = SimEnvironment(seed=0, heap_capacity=100)
        leak = LeakFault("l", cells_per_call=10)
        assert not leak.activates((1,), env)
        assert env.heap.leaked_cells == 10
        assert leak.total_leaked == 10

    def test_eventually_exhausts_the_heap(self):
        env = SimEnvironment(seed=0, heap_capacity=32)
        leak = LeakFault("l", cells_per_call=10)
        leak.activates((1,), env)
        leak.activates((1,), env)
        leak.activates((1,), env)
        with pytest.raises(AgingFailure):
            leak.activates((1,), env)

    def test_rejuvenation_restores_allocations(self):
        env = SimEnvironment(seed=0, heap_capacity=32)
        leak = LeakFault("l", cells_per_call=10)
        for _ in range(3):
            leak.activates((1,), env)
        env.rejuvenate()
        assert not leak.activates((1,), env)  # room again

    def test_no_heap_no_leak(self):
        leak = LeakFault("l")
        assert not leak.activates((1,), None)

    def test_positive_cells_required(self):
        with pytest.raises(ValueError):
            LeakFault("l", cells_per_call=0)
