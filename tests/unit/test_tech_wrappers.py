"""Unit tests for protective wrappers and healer wrappers."""

import pytest

from repro.environment.memory import SimulatedHeap
from repro.exceptions import BohrbugFailure, MemoryViolation
from repro.faults.development import Bohrbug, InputRegion
from repro.faults.injector import FaultyFunction
from repro.taxonomy.paper import paper_entry
from repro.techniques.wrappers import (
    HealerWrapper,
    ProtectiveWrapper,
    clamp_guard,
    reject_guard,
)


class TestProtectiveWrapper:
    def test_taxonomy_matches_paper(self):
        assert ProtectiveWrapper.TAXONOMY.matches(paper_entry("Wrappers"))

    def test_passthrough_when_args_fine(self):
        wrapper = ProtectiveWrapper(lambda x: x * 2,
                                    guards=[clamp_guard(0, 100)])
        assert wrapper(5) == 10
        assert wrapper.fixed_calls == 0

    def test_clamp_guard_prevents_bohrbug(self):
        # The COTS component crashes on out-of-contract inputs (> 100).
        cots = FaultyFunction(
            lambda x: x * 2,
            faults=[Bohrbug("contract",
                            predicate=lambda args: args[0] > 100)])
        with pytest.raises(BohrbugFailure):
            cots(150)
        wrapper = ProtectiveWrapper(cots, guards=[clamp_guard(0, 100)])
        assert wrapper(150) == 200  # clamped to the valid domain
        assert wrapper.fixed_calls == 1

    def test_reject_guard_blocks_call(self):
        wrapper = ProtectiveWrapper(
            lambda x: x,
            guards=[reject_guard(lambda args: args[0] < 0, "negative")])
        with pytest.raises(MemoryViolation):
            wrapper(-1)
        assert wrapper.blocked_calls == 1
        assert wrapper(1) == 1

    def test_guards_compose_in_order(self):
        wrapper = ProtectiveWrapper(
            lambda x: x,
            guards=[clamp_guard(0, 10),
                    reject_guard(lambda args: args[0] == 10)])
        # 50 clamps to 10, then the reject guard fires.
        with pytest.raises(MemoryViolation):
            wrapper(50)

    def test_clamp_guard_validation(self):
        with pytest.raises(ValueError):
            clamp_guard(10, 0)


class TestHealerWrapper:
    def test_in_bounds_writes_land(self):
        heap = SimulatedHeap()
        block = heap.alloc(4)
        healer = HealerWrapper(heap)
        assert healer.write(block, 2, 9)
        assert heap.read(block, 2) == 9
        assert healer.stats.writes == 1

    def test_truncate_mode_absorbs_overflow(self):
        heap = SimulatedHeap()
        victim_source = heap.alloc(4)
        neighbour = heap.alloc(4)
        healer = HealerWrapper(heap, mode="truncate")
        assert not healer.write(victim_source, 4, 99)
        assert healer.stats.prevented_overflows == 1
        assert heap.smash_count == 0
        assert not neighbour.corrupted

    def test_reject_mode_raises(self):
        heap = SimulatedHeap()
        block = heap.alloc(4)
        healer = HealerWrapper(heap, mode="reject")
        with pytest.raises(MemoryViolation):
            healer.write(block, 7, 1)
        assert heap.smash_count == 0

    def test_write_buffer_truncates_at_boundary(self):
        heap = SimulatedHeap()
        block = heap.alloc(4)
        neighbour = heap.alloc(4)
        healer = HealerWrapper(heap, mode="truncate")
        written = healer.write_buffer(block, list(range(10)))
        assert written == 4
        assert not neighbour.corrupted
        assert [heap.read(block, i) for i in range(4)] == [0, 1, 2, 3]

    def test_unprotected_bulk_copy_smashes(self):
        # Baseline for C14: the same workload without the healer.
        heap = SimulatedHeap()
        block = heap.alloc(4)
        neighbour = heap.alloc(4)
        for offset, value in enumerate(range(10)):
            heap.write(block, offset, value)
        assert heap.smash_count > 0
        assert neighbour.corrupted

    def test_mode_validated(self):
        with pytest.raises(ValueError):
            HealerWrapper(SimulatedHeap(), mode="panic")
