"""The flight recorder: bounded ring, dump triggers, JSONL rendering.

Covers the ring's strict FIFO eviction, the framework's three dump
triggers (``chunk-timeout``, ``chunk-serial-retry``, ``trial-failure``
— including a worker killed mid-chunk on the process backend), and the
``repro-events-jsonl/v1`` round trip shared with the event exporter.
"""

import time

import pytest

from repro import observe
from repro.observe import flightrec
from repro.observe.export.jsonl import validate_event_log
from repro.observe.flightrec import SCHEMA, FlightRecorder
from repro.runtime.pmap import ParallelMap


class TestRingBuffer:
    def test_strict_fifo_eviction_order(self):
        rec = FlightRecorder(capacity=4)
        tel = observe.Telemetry()
        rec.attach(tel)
        for i in range(6):
            tel.publish(f"unit.e{i}", i=i)
        window = rec.window()
        assert [r["topic"] for r in window] == \
            ["unit.e2", "unit.e3", "unit.e4", "unit.e5"]
        assert [r["seq"] for r in window] == [2, 3, 4, 5]
        assert rec.captured == 6  # eviction never decrements the tally

    def test_spans_interleave_with_events(self):
        rec = FlightRecorder(capacity=8)
        tel = observe.Telemetry()
        rec.attach(tel)
        with tel.span("unit.work", cost=1.0):
            tel.publish("unit.inside")
        topics = [r["topic"] for r in rec.window()]
        # The span finishes after the event it encloses.
        assert topics == ["unit.inside", "span"]
        assert rec.window()[1]["payload"]["name"] == "unit.work"

    def test_clear_keeps_tallies(self):
        rec = FlightRecorder(capacity=4)
        tel = observe.Telemetry()
        rec.attach(tel)
        tel.publish("unit.e")
        rec.clear()
        assert rec.window() == []
        assert rec.captured == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_recorder_never_perturbs_snapshots(self):
        # The always-on tap must not show up in the session's own
        # telemetry: identical runs with and without extra recorders
        # attached snapshot identically.
        tel = observe.Telemetry()
        tel.publish("unit.e", x=1)
        baseline = tel.snapshot()
        extra = FlightRecorder(capacity=4)
        tel2 = observe.Telemetry()
        extra.attach(tel2)
        tel2.publish("unit.e", x=1)
        assert tel2.snapshot() == baseline


class TestDumps:
    def test_dump_document_shape(self):
        rec = FlightRecorder(capacity=4)
        tel = observe.Telemetry()
        rec.attach(tel)
        tel.publish("unit.before_crash")
        document = rec.dump("unit-test", chunk=3, backend="thread")
        assert document["schema"] == SCHEMA
        assert document["reason"] == "unit-test"
        assert document["context"] == {"chunk": 3, "backend": "thread"}
        assert document["capacity"] == 4
        assert document["records"][-1]["topic"] == "unit.before_crash"
        assert rec.dumps == 1

    def test_dump_jsonl_round_trips_the_shared_validator(self):
        rec = FlightRecorder(capacity=4)
        tel = observe.Telemetry()
        rec.attach(tel)
        tel.publish("unit.e", x=1)
        with tel.span("unit.s", cost=1.0):
            pass
        text = rec.dump_jsonl("unit-test", chunk=0)
        header = validate_event_log(text)
        assert header["source"] == "flight-recorder"
        assert header["events"] == 2
        assert header["flightrec"]["reason"] == "unit-test"

    def test_module_level_dump_lands_in_recent_ring(self):
        before = len(flightrec.recent_dumps())
        document = flightrec.dump("unit-module-dump", marker=42)
        recent = flightrec.recent_dumps()
        assert len(recent) >= min(before + 1, 16)
        assert recent[-1] is document
        assert recent[-1]["context"] == {"marker": 42}

    def test_process_recorder_is_a_singleton(self):
        assert flightrec.recorder() is flightrec.recorder()


class TestPoolDumpTriggers:
    def test_serial_retry_dumps_flight_window(self):
        state = {"failed": False}

        def flaky(x):
            if x == 2 and not state["failed"]:
                state["failed"] = True
                raise RuntimeError("induced worker failure")
            return x + 1

        pool = ParallelMap(workers=2, backend="thread", chunk_size=1)
        results = pool.map(flaky, [0, 1, 2, 3])
        assert results == [1, 2, 3, 4]
        assert pool.stats.serial_retries == 1
        assert pool.stats.flight_dumps == 1
        [record] = pool.flight_records
        assert record["schema"] == SCHEMA
        assert record["reason"] == "chunk-serial-retry"
        assert record["context"]["backend"] == "thread"

    def test_chunk_timeout_dumps_flight_window(self):
        def slow(x):
            if x == 1:
                time.sleep(0.4)
            return x + 1

        pool = ParallelMap(workers=2, backend="thread", chunk_size=1,
                           timeout=0.05)
        results = pool.map(slow, [0, 1])
        assert results == [1, 2]
        assert pool.stats.timeouts == 1
        assert any(record["reason"] == "chunk-timeout"
                   for record in pool.flight_records)

    def test_trial_failure_dumps_in_the_executing_process(self):
        from repro.harness.experiment import Experiment

        def bad_trial(seed):
            raise RuntimeError("induced trial failure")

        with pytest.raises(RuntimeError, match="induced trial failure"):
            Experiment(name="flight", trial=bad_trial, seeds=(0,)).run()
        recent = flightrec.recent_dumps()
        assert recent and recent[-1]["reason"] == "trial-failure"
        assert recent[-1]["context"]["seed"] == 0

    def test_worker_death_recovers_with_flight_dump(self):
        # A worker killed mid-chunk (os._exit, no exception, no
        # traceback) must not kill the run: the parent re-runs the
        # chunk serially, dumps the flight window, and exits cleanly.
        # Run in a subprocess so the dying workers (and the broken
        # executor they leave behind) can't leak into this process.
        import pathlib
        import subprocess
        import sys

        script = """
import os, sys
sys.path.insert(0, {src!r})
os.environ["FLIGHT_PARENT"] = str(os.getpid())

def task(x):
    if x == 2 and os.getpid() != int(os.environ["FLIGHT_PARENT"]):
        os._exit(3)  # simulated worker crash: no exception raised
    return x + 1

from repro.runtime.pmap import ParallelMap
pool = ParallelMap(workers=2, backend="process", chunk_size=1)
results = pool.map(task, [0, 1, 2, 3])
assert results == [1, 2, 3, 4], results
assert pool.stats.serial_retries >= 1
assert pool.flight_records, "no flight dump recorded"
assert all(r["reason"] == "chunk-serial-retry"
           for r in pool.flight_records)
print("recovered", len(pool.flight_records))
""".format(src=str(pathlib.Path(__file__).resolve().parents[2] / "src"))
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.startswith("recovered")
