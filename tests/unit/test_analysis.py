"""Unit tests for the analytic models."""

import math

import pytest

from repro.analysis.aging_model import (
    completion_time,
    optimal_interval,
    segment_failure_probability,
)
from repro.analysis.cost import CostLedger
from repro.analysis.markov import MarkovChain, steady_state
from repro.analysis.reliability import (
    correlated_vote_reliability,
    k_tolerance,
    series_availability,
    substitution_availability,
    vote_reliability,
)
from repro.patterns.base import PatternStats
from repro.components.version import Version


class TestKTolerance:
    def test_paper_rule_2k_plus_1(self):
        # "a three-versions system can tolerate at most one faulty result,
        #  a five-versions system can tolerate up to two"
        assert k_tolerance(3) == 1
        assert k_tolerance(5) == 2
        assert k_tolerance(7) == 3

    def test_even_sizes(self):
        assert k_tolerance(4) == 1
        assert k_tolerance(2) == 0

    def test_simplex(self):
        assert k_tolerance(1) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            k_tolerance(0)


class TestVoteReliability:
    def test_perfect_versions(self):
        assert vote_reliability(5, 0.0) == 1.0

    def test_hopeless_versions(self):
        assert vote_reliability(5, 1.0) == 0.0

    def test_three_version_closed_form(self):
        p = 0.1
        expected = (1 - p) ** 3 + 3 * p * (1 - p) ** 2
        assert vote_reliability(3, p) == pytest.approx(expected)

    def test_more_versions_help_when_versions_are_good(self):
        p = 0.1
        assert (vote_reliability(7, p) > vote_reliability(5, p)
                > vote_reliability(3, p) > 1 - p - 0.03)

    def test_more_versions_hurt_when_versions_are_bad(self):
        p = 0.7  # worse than a coin: redundancy amplifies failure
        assert vote_reliability(5, p) < vote_reliability(3, p) < 1 - p + 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            vote_reliability(3, 1.5)


class TestCorrelatedVoteReliability:
    def test_zero_correlation_matches_independent(self):
        assert correlated_vote_reliability(5, 0.1, 0.0) == pytest.approx(
            vote_reliability(5, 0.1))

    def test_correlation_erodes_the_gain(self):
        p = 0.1
        values = [correlated_vote_reliability(5, p, rho)
                  for rho in (0.0, 0.2, 0.5, 0.8)]
        assert values == sorted(values, reverse=True)

    def test_full_correlation_no_better_than_single_version(self):
        p = 0.1
        assert correlated_vote_reliability(5, p, 1.0) == pytest.approx(
            1 - p, abs=1e-6)


class TestAvailabilityFormulas:
    def test_substitution(self):
        assert substitution_availability((0.5, 0.5)) == pytest.approx(0.75)
        assert substitution_availability(()) == 0.0

    def test_series(self):
        assert series_availability((0.9, 0.9)) == pytest.approx(0.81)

    def test_validation(self):
        with pytest.raises(ValueError):
            substitution_availability((1.5,))
        with pytest.raises(ValueError):
            series_availability((-0.1,))


class TestMarkov:
    def test_two_state_chain(self):
        chain = MarkovChain(
            ["up", "down"],
            {"up": {"up": 0.9, "down": 0.1},
             "down": {"up": 0.5, "down": 0.5}})
        pi = chain.steady_state()
        # pi_up = 0.5/(0.1+0.5)
        assert pi["up"] == pytest.approx(5 / 6, abs=1e-6)
        assert chain.availability(["up"]) == pytest.approx(5 / 6, abs=1e-6)

    def test_distribution_sums_to_one(self):
        pi = steady_state(
            ["a", "b", "c"],
            {"a": {"b": 1.0}, "b": {"c": 1.0}, "c": {"a": 1.0}})
        assert sum(pi.values()) == pytest.approx(1.0)

    def test_rows_must_sum_to_one(self):
        with pytest.raises(ValueError):
            MarkovChain(["a"], {"a": {"a": 0.5}})

    def test_all_states_need_rows(self):
        with pytest.raises(ValueError):
            MarkovChain(["a", "b"], {"a": {"a": 1.0}})

    def test_duplicate_states_rejected(self):
        with pytest.raises(ValueError):
            MarkovChain(["a", "a"], {"a": {"a": 1.0}})


class TestAgingModel:
    def test_segment_failure_grows_with_age(self):
        young = segment_failure_probability(0, 10, beta=1e-4)
        old = segment_failure_probability(1000, 10, beta=1e-4)
        assert old > young

    def test_completion_time_exceeds_ideal(self):
        ideal = 1000.0
        t = completion_time(work=ideal, checkpoint_interval=50,
                            rejuvenate_every=4, beta=1e-6)
        assert t > ideal

    def test_u_shape_in_rejuvenation_period(self):
        kwargs = dict(work=5000.0, checkpoint_interval=50, beta=1e-6,
                      rejuvenation_cost=20.0)
        times = {every: completion_time(rejuvenate_every=every, **kwargs)
                 for every in (1, 8, 64)}
        best_every, _ = optimal_interval(5000.0, 50, max_every=64,
                                         beta=1e-6, rejuvenation_cost=20.0)
        # The optimum is interior: both extremes are worse.
        assert 1 < best_every < 64
        best_time = completion_time(rejuvenate_every=best_every, **kwargs)
        assert best_time < times[1]
        assert best_time < times[64]

    def test_no_rejuvenation_bad_under_strong_aging(self):
        kwargs = dict(work=5000.0, checkpoint_interval=50, beta=1e-5)
        never = completion_time(rejuvenate_every=None, **kwargs)
        periodic = completion_time(rejuvenate_every=4, **kwargs)
        assert periodic < never

    def test_validation(self):
        with pytest.raises(ValueError):
            completion_time(0, 10, None)
        with pytest.raises(ValueError):
            completion_time(10, 0, None)
        with pytest.raises(ValueError):
            completion_time(10, 5, 0)
        with pytest.raises(ValueError):
            segment_failure_probability(-1, 10, 0.1)


class TestCostLedger:
    def test_report_normalises_per_request(self):
        stats = PatternStats(invocations=10, executions=30,
                             execution_cost=30.0, adjudications=10,
                             adjudication_cost=5.0)
        versions = [Version(f"v{i}", impl=lambda x: x, design_cost=100.0)
                    for i in range(3)]
        ledger = CostLedger.from_pattern(stats, versions,
                                         adjudicator_design_cost=50.0,
                                         correct=9)
        report = ledger.report("NVP")
        assert report.design_cost == 350.0
        assert report.executions_per_request == 3.0
        assert report.adjudication_cost_per_request == 0.5
        assert report.reliability == 0.9

    def test_empty_ledger_report(self):
        report = CostLedger().report("x")
        assert report.reliability == 0.0
        assert report.executions_per_request == 0.0

    def test_as_row_keys(self):
        row = CostLedger().report("x").as_row()
        assert "technique" in row and "reliability" in row
