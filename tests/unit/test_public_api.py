"""API stability: the documented public surface exists and is coherent."""

import importlib
import inspect

import pytest

import repro

PUBLIC_PACKAGES = (
    "repro.adjudicators",
    "repro.analysis",
    "repro.components",
    "repro.environment",
    "repro.faults",
    "repro.harness",
    "repro.observe",
    "repro.patterns",
    "repro.repair",
    "repro.services",
    "repro.sqlstore",
    "repro.taxonomy",
    "repro.techniques",
)


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_all_is_sorted(self):
        assert list(repro.__all__) == sorted(repro.__all__)

    def test_version_is_set(self):
        assert repro.__version__

    def test_quickstart_docstring_example_works(self):
        # The example embedded in the package docstring must run.
        from repro import NVersionProgramming, diverse_versions
        versions = diverse_versions(lambda x: x * x, n=5,
                                    failure_probability=0.1, seed=1)
        nvp = NVersionProgramming(versions)
        assert nvp.execute(12) == 144


class TestSubpackages:
    @pytest.mark.parametrize("package", PUBLIC_PACKAGES)
    def test_importable_with_docstring(self, package):
        module = importlib.import_module(package)
        assert module.__doc__, f"{package} lacks a package docstring"

    @pytest.mark.parametrize("package", PUBLIC_PACKAGES)
    def test_exports_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", ()):
            assert hasattr(module, name), f"{package}.{name}"


class TestDocstringCoverage:
    @pytest.mark.parametrize("package", PUBLIC_PACKAGES)
    def test_public_classes_and_functions_documented(self, package):
        module = importlib.import_module(package)
        undocumented = []
        for name in getattr(module, "__all__", ()):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not inspect.getdoc(obj):
                    undocumented.append(f"{package}.{name}")
        assert not undocumented, undocumented


class TestTechniqueSurface:
    def test_every_technique_class_is_exported_from_techniques(self):
        import repro.techniques as techniques
        from repro.taxonomy import default_registry
        exported = {getattr(techniques, name)
                    for name in techniques.__all__
                    if inspect.isclass(getattr(techniques, name))}
        for name in default_registry.names():
            assert default_registry.technique(name) in exported, name

    def test_technique_names_match_table2(self):
        from repro.taxonomy import default_registry
        from repro.taxonomy.paper import PAPER_TABLE2
        assert set(default_registry.names()) == {
            e.name for e in PAPER_TABLE2}
