"""Unit tests for environment-sensitive and malicious faults."""

import pytest

from repro.environment import SimEnvironment
from repro.environment.simenv import (
    CHANGE_PRIORITY,
    PAD_ALLOCATIONS,
    SHUFFLE_MESSAGES,
    THROTTLE_REQUESTS,
)
from repro.faults.environmental import LoadBug, OrderingBug, OverflowBug
from repro.faults.malicious import (
    AttackPayload,
    BUFFER_SIZE,
    MaliciousInputFault,
    absolute_address_attack,
    benign_request,
    code_injection_attack,
    install_service,
    vulnerable_program,
)
from repro.environment.process import AddressSpace, SimulatedProcess
from repro.exceptions import CodeInjectionFault, SegmentationFault


class TestOverflowBug:
    def test_triggers_only_on_modulo_inputs(self):
        bug = OverflowBug("o", overflow_cells=4, trigger_modulo=10)
        env = SimEnvironment()
        assert bug.activates((20,), env)
        assert not bug.activates((21,), env)

    def test_padding_absorbs_the_overflow(self):
        bug = OverflowBug("o", overflow_cells=4, trigger_modulo=1)
        env = SimEnvironment()
        assert bug.activates((5,), env)
        env.perturb(PAD_ALLOCATIONS)  # pad = 8 >= 4
        assert not bug.activates((5,), env)

    def test_insufficient_padding_still_fails(self):
        bug = OverflowBug("o", overflow_cells=16, trigger_modulo=1)
        env = SimEnvironment()
        env.perturb(PAD_ALLOCATIONS)  # pad = 8 < 16
        assert bug.activates((5,), env)

    def test_non_numeric_inputs_never_trigger(self):
        bug = OverflowBug("o", trigger_modulo=1)
        assert not bug.activates(("hello",), SimEnvironment())


class TestOrderingBug:
    def test_deterministic_within_an_environment(self):
        env = SimEnvironment(seed=1)
        bug = OrderingBug("d", bad_fraction=0.5)
        first = bug.activates((1,), env)
        assert all(bug.activates((1,), env) == first for _ in range(5))

    def test_reordering_changes_the_draw(self):
        # With bad_fraction=0.5, some seed escapes after a shuffle.
        bug = OrderingBug("d", bad_fraction=0.5)
        escaped = False
        for seed in range(20):
            env = SimEnvironment(seed=seed)
            if not bug.activates((1,), env):
                continue  # need an initially-failing interleaving
            env.perturb(SHUFFLE_MESSAGES)
            if not bug.activates((1,), env):
                escaped = True
                break
        assert escaped

    def test_always_bad_fraction_means_priority_may_not_help(self):
        bug = OrderingBug("d", bad_fraction=1.0)
        env = SimEnvironment(seed=1)
        env.perturb(CHANGE_PRIORITY)
        assert bug.activates((1,), env)

    def test_bad_fraction_validated(self):
        with pytest.raises(ValueError):
            OrderingBug("d", bad_fraction=0.0)


class TestLoadBug:
    def test_fires_under_load(self):
        env = SimEnvironment(seed=0)
        bug = LoadBug("l", probability=1.0)
        assert bug.activates((1,), env)

    def test_throttling_suppresses_it(self):
        env = SimEnvironment(seed=0)
        env.perturb(THROTTLE_REQUESTS)
        bug = LoadBug("l", probability=1.0)
        assert not bug.activates((1,), env)

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            LoadBug("l", probability=-0.1)


class TestMaliciousInputFault:
    def test_detects_attack_payload_objects(self):
        fault = MaliciousInputFault("m")
        assert fault.activates((absolute_address_attack(),), None)

    def test_detects_oversized_vectors(self):
        fault = MaliciousInputFault("m")
        oversized = tuple(range(BUFFER_SIZE + 1))
        assert fault.activates((oversized,), None)
        assert not fault.activates(((1, 2),), None)

    def test_throttling_drops_attacks(self):
        env = SimEnvironment()
        env.perturb(THROTTLE_REQUESTS)
        fault = MaliciousInputFault("m")
        assert not fault.activates((absolute_address_attack(),), env)

    def test_custom_predicate(self):
        fault = MaliciousInputFault("m", is_attack=lambda args: args[0] < 0)
        assert fault.activates((-1,), None)
        assert not fault.activates((1,), None)


class TestCanonicalAttacks:
    def _victim(self, base=0, tag="tag-0", check_tags=True):
        process = SimulatedProcess(
            "victim", AddressSpace(base=base, size=1000),
            tag=tag, check_tags=check_tags)
        program = install_service(process)
        return process, program

    def test_benign_request_served(self):
        process, program = self._victim()
        assert process.execute(program, benign_request(41)) == 42

    def test_benign_request_served_in_rebased_variant(self):
        process, program = self._victim(base=3000)
        assert process.execute(program, benign_request(9)) == 10

    def test_code_injection_succeeds_without_tagging(self):
        process, program = self._victim(check_tags=False)
        attack = code_injection_attack()
        assert process.execute(program, attack.values) == 0x511

    def test_tagging_stops_injection(self):
        process, program = self._victim(check_tags=True)
        attack = code_injection_attack(guessed_tag="wrong")
        with pytest.raises(CodeInjectionFault):
            process.execute(program, attack.values)

    def test_partitioning_stops_absolute_address_attack(self):
        process, program = self._victim(base=5000, check_tags=False)
        attack = absolute_address_attack()
        with pytest.raises(SegmentationFault):
            process.execute(program, attack.values)

    def test_payload_kinds(self):
        assert absolute_address_attack().kind == "absolute-address"
        assert code_injection_attack().kind == "code-injection"
        assert isinstance(absolute_address_attack(), AttackPayload)
