"""Unit tests for the SimEnvironment facade."""

import pytest

from repro.environment.scheduler import FIFO, SHUFFLE
from repro.environment.simenv import (
    CHANGE_PRIORITY,
    PAD_ALLOCATIONS,
    PERTURBATIONS,
    SHUFFLE_MESSAGES,
    THROTTLE_REQUESTS,
    SimEnvironment,
)


class TestWorkAndAging:
    def test_work_advances_clock_and_age(self):
        env = SimEnvironment()
        env.do_work(5)
        env.do_work(2)
        assert env.clock.now == 7
        assert env.age == 7

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            SimEnvironment().do_work(-1)

    def test_chance_is_seeded(self):
        a = SimEnvironment(seed=3)
        b = SimEnvironment(seed=3)
        assert [a.chance(0.5) for _ in range(20)] == \
            [b.chance(0.5) for _ in range(20)]

    def test_chance_extremes(self):
        env = SimEnvironment()
        assert not env.chance(0.0)
        assert env.chance(1.0)

    def test_chance_validates_probability(self):
        with pytest.raises(ValueError):
            SimEnvironment().chance(1.5)


class TestPerturbations:
    def test_pad_allocations(self):
        env = SimEnvironment()
        env.perturb(PAD_ALLOCATIONS)
        assert env.heap.default_pad == 8
        env.perturb(PAD_ALLOCATIONS)
        assert env.heap.default_pad == 16

    def test_shuffle_messages(self):
        env = SimEnvironment()
        env.perturb(SHUFFLE_MESSAGES)
        assert env.scheduler.policy == SHUFFLE

    def test_change_priority(self):
        env = SimEnvironment()
        env.perturb(CHANGE_PRIORITY)
        assert env.scheduler.policy == "priority"

    def test_throttle(self):
        env = SimEnvironment()
        env.perturb(THROTTLE_REQUESTS)
        assert env.throttled

    def test_unknown_perturbation_rejected(self):
        with pytest.raises(ValueError):
            SimEnvironment().perturb("defragment-disk")

    def test_applied_perturbations_logged(self):
        env = SimEnvironment()
        for kind in PERTURBATIONS:
            env.perturb(kind)
        assert env.applied_perturbations == list(PERTURBATIONS)

    def test_reset_perturbations(self):
        env = SimEnvironment(seed=4)
        for kind in PERTURBATIONS:
            env.perturb(kind)
        env.reset_perturbations()
        assert env.heap.default_pad == 0
        assert env.scheduler.policy == FIFO
        assert not env.throttled
        assert env.applied_perturbations == []


class TestReinitialisation:
    def test_reboot_clears_state_and_costs_downtime(self):
        env = SimEnvironment()
        env.heap.leak(env.heap.alloc(16))
        env.do_work(50)
        before = env.clock.now
        downtime = env.reboot()
        assert downtime == SimEnvironment.FULL_REBOOT_COST
        assert env.clock.now == before + downtime
        assert env.age == 0
        assert env.heap.leaked_cells == 0
        assert env.epoch == 1

    def test_rejuvenation_is_cheaper_than_reboot(self):
        assert (SimEnvironment.REJUVENATION_COST
                < SimEnvironment.FULL_REBOOT_COST)

    def test_micro_reboot_cost_is_much_cheaper(self):
        assert (SimEnvironment.MICRO_REBOOT_COST * 10
                < SimEnvironment.FULL_REBOOT_COST)


class TestSnapshots:
    def test_snapshot_restores_heap_and_age(self):
        env = SimEnvironment()
        env.heap.alloc(8)
        env.do_work(5)
        snap = env.snapshot(note="before")
        env.heap.alloc(8)
        env.do_work(5)
        env.restore(snap)
        assert env.heap.allocated_cells == 8
        assert env.age == 5
        assert snap.extra == {"note": "before"}

    def test_clock_never_rolls_back(self):
        env = SimEnvironment()
        env.do_work(5)
        snap = env.snapshot()
        env.do_work(5)
        env.restore(snap)
        assert env.clock.now == 10

    def test_nondeterminism_not_replayed_by_default(self):
        env = SimEnvironment(seed=1)
        snap = env.snapshot()
        first = [env.chance(0.5) for _ in range(10)]
        env.restore(snap)
        second = [env.chance(0.5) for _ in range(10)]
        assert first != second  # fresh draws after rollback

    def test_nondeterminism_replayed_when_requested(self):
        env = SimEnvironment(seed=1)
        snap = env.snapshot()
        first = [env.chance(0.5) for _ in range(10)]
        env.restore(snap, replay_nondeterminism=True)
        second = [env.chance(0.5) for _ in range(10)]
        assert first == second

    def test_describe_keys(self):
        description = SimEnvironment().describe()
        assert {"time", "age", "epoch", "heap_pressure",
                "scheduler_policy"} <= set(description)
