"""Unit tests for intrinsic-redundancy mining."""

import pytest

from repro.components.state import DictState
from repro.exceptions import BohrbugFailure
from repro.techniques.workarounds import AutomaticWorkarounds
from repro.techniques.workaround_mining import (
    MiningProbe,
    RedundancyMiner,
    at_end_args,
    identity_args,
)


def reference_operations():
    """A healthy container API with latent redundancy."""

    def append(subject, value):
        subject["items"].append(value)
        return tuple(subject["items"])

    def insert(subject, index, value):
        if index >= len(subject["items"]):
            subject["items"].append(value)
        else:
            subject["items"].insert(index, value)
        return tuple(subject["items"])

    def pop_front(subject):
        return subject["items"].pop(0)

    def size(subject):
        return len(subject["items"])

    return {"append": append, "insert": insert, "pop_front": pop_front,
            "size": size}


def probes():
    return [
        MiningProbe(build_state=lambda: DictState(items=[]), args=(7,)),
        MiningProbe(build_state=lambda: DictState(items=[1, 2]),
                    args=(9,)),
        MiningProbe(build_state=lambda: DictState(items=[5, 5, 5]),
                    args=(0,)),
    ]


class TestArgMappers:
    def test_identity(self):
        assert identity_args((1, 2)) == (1, 2)

    def test_at_end(self):
        assert at_end_args((7,)) == (10 ** 9, 7)


class TestMining:
    def test_discovers_append_as_insert(self):
        miner = RedundancyMiner(reference_operations(),
                                max_sequence_length=1)
        sequences = miner.equivalent_sequences("append", probes())
        assert [("insert", 1)] in sequences  # insert with END-prefixed args

    def test_no_false_equivalences(self):
        miner = RedundancyMiner(reference_operations(),
                                max_sequence_length=1)
        sequences = miner.equivalent_sequences("append", probes())
        ops = {tuple(name for name, _ in seq) for seq in sequences}
        # size() and pop_front() do not replicate append's effect.
        assert ("size",) not in ops
        assert ("pop_front",) not in ops

    def test_single_probe_overfits_more_probes_prune(self):
        miner = RedundancyMiner(reference_operations(),
                                max_sequence_length=1)
        # On an empty container, insert(0, x) mimics append(x)...
        single = miner.equivalent_sequences(
            "append",
            [MiningProbe(build_state=lambda: DictState(items=[]),
                         args=(7,))])
        # ...but the identity-mapped insert (index=x!) survives only the
        # single lucky probe; with the full probe set it is pruned.
        full = miner.equivalent_sequences("append", probes())
        assert len(full) <= len(single)

    def test_reference_must_be_healthy(self):
        operations = reference_operations()

        def broken_append(subject, value):
            raise BohrbugFailure("reference down")

        operations["append"] = broken_append
        miner = RedundancyMiner(operations)
        with pytest.raises(ValueError):
            miner.equivalent_sequences("append", probes())

    def test_validation(self):
        with pytest.raises(ValueError):
            RedundancyMiner({})
        with pytest.raises(ValueError):
            RedundancyMiner(reference_operations(), max_sequence_length=0)
        with pytest.raises(ValueError):
            RedundancyMiner(reference_operations()).equivalent_sequences(
                "append", [])


class TestMinedRulesDriveWorkarounds:
    def test_end_to_end(self):
        # Mine rules from the healthy reference implementation...
        miner = RedundancyMiner(reference_operations(),
                                max_sequence_length=1)
        rules = miner.discover_rules("append", probes())
        assert rules
        assert all(rule.op == "append" for rule in rules)

        # ...then deploy them on a component whose append is buggy.
        deployed = reference_operations()
        healthy_append = deployed["append"]

        def faulty_append(subject, value):
            if len(subject["items"]) >= 2:
                raise BohrbugFailure("append broken on larger lists")
            return healthy_append(subject, value)

        deployed["append"] = faulty_append
        subject = DictState(items=[])
        workarounds = AutomaticWorkarounds(deployed, rules, subject)
        report = workarounds.execute(
            [("append", (1,)), ("append", (2,)), ("append", (3,))])
        assert report.workaround_used.startswith("mined:")
        assert subject["items"] == [1, 2, 3]

    def test_shorter_sequences_rank_higher(self):
        miner = RedundancyMiner(reference_operations(),
                                max_sequence_length=2)
        rules = miner.discover_rules("append", probes())
        if len(rules) > 1:
            likelihoods = [r.likelihood for r in rules]
            lengths = [r.name.count("+") for r in rules]
            # Any strictly shorter mined sequence has >= likelihood.
            for (l1, k1), (l2, k2) in zip(zip(likelihoods, lengths),
                                          zip(likelihoods[1:],
                                              lengths[1:])):
                if k1 < k2:
                    assert l1 >= l2
