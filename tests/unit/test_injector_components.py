"""Unit tests for fault injection, versions, components, and state."""

import pytest

from repro.components.component import Component, RestartableComponent
from repro.components.interface import FunctionSpec
from repro.components.state import DictState
from repro.components.version import Version
from repro.environment import SimEnvironment
from repro.exceptions import BohrbugFailure, CrashFailure
from repro.faults.base import CRASH, WRONG_VALUE
from repro.faults.development import Bohrbug, InputRegion
from repro.faults.injector import FaultInjector, FaultyFunction


class TestFaultInjector:
    def test_no_faults_passes_value_through(self):
        injector = FaultInjector()
        assert injector.apply((1,), None, 42) == 42

    def test_first_activating_fault_wins(self):
        calm = Bohrbug("calm", region=InputRegion(1000, 2000),
                       effect=WRONG_VALUE)
        loud = Bohrbug("loud", region=InputRegion(0, 100),
                       effect=WRONG_VALUE)
        injector = FaultInjector([calm, loud])
        corrupted = injector.apply((5,), None, 10)
        assert corrupted != 10
        assert loud.activations == 1 and calm.activations == 0

    def test_crash_fault_raises(self):
        injector = FaultInjector([Bohrbug("b", region=InputRegion(0, 10))])
        with pytest.raises(BohrbugFailure):
            injector.apply((5,), None, 1)

    def test_add_remove(self):
        bug = Bohrbug("b", region=InputRegion(0, 10))
        injector = FaultInjector()
        injector.add(bug)
        assert injector.faults == (bug,)
        injector.remove(bug)
        assert injector.faults == ()


class TestFaultyFunction:
    def test_calls_through(self):
        f = FaultyFunction(lambda x: x * 3, name="triple")
        assert f(4) == 12
        assert f.calls == 1

    def test_bills_environment(self):
        env = SimEnvironment()
        f = FaultyFunction(lambda x: x, cost=2.5)
        f(1, env=env)
        assert env.clock.now == 2.5

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            FaultyFunction(lambda x: x, cost=-1)

    def test_default_env_used(self):
        env = SimEnvironment()
        f = FaultyFunction(lambda x: x, cost=1.0, env=env)
        f(1)
        assert env.clock.now == 1.0


class TestFunctionSpec:
    def test_matches_same_name_and_arity(self):
        a = FunctionSpec("sqrt", arity=1)
        assert a.matches(FunctionSpec("sqrt", arity=1))
        assert not a.matches(FunctionSpec("sqrt", arity=2))
        assert not a.matches(FunctionSpec("cbrt", arity=1))

    def test_similarity_requires_semantic_key(self):
        a = FunctionSpec("sqrt-v1", arity=1, semantic_key="sqrt")
        b = FunctionSpec("sqrt-v2", arity=1, semantic_key="sqrt")
        c = FunctionSpec("noop", arity=1)
        assert a.similar_to(b)
        assert not a.similar_to(c)
        assert not c.similar_to(a)

    def test_check_args(self):
        spec = FunctionSpec("f", arity=2)
        spec.check_args((1, 2))
        with pytest.raises(TypeError):
            spec.check_args((1,))

    def test_validation(self):
        with pytest.raises(ValueError):
            FunctionSpec("", arity=1)
        with pytest.raises(ValueError):
            FunctionSpec("f", arity=-1)


class TestVersion:
    def test_execute(self):
        v = Version("v", impl=lambda x: x + 1)
        assert v.execute(1) == 2
        assert v(2) == 3
        assert v.calls == 2

    def test_spec_enforced(self):
        v = Version("v", impl=lambda x: x, spec=FunctionSpec("f", arity=1))
        with pytest.raises(TypeError):
            v.execute(1, 2)

    def test_faults_applied(self):
        v = Version("v", impl=lambda x: x,
                    faults=[Bohrbug("b", region=InputRegion(0, 10))])
        with pytest.raises(BohrbugFailure):
            v.execute(5)
        assert v.execute(50) == 50

    def test_env_billing(self):
        env = SimEnvironment()
        v = Version("v", impl=lambda x: x, exec_cost=3.0)
        v.execute(1, env=env)
        assert env.clock.now == 3.0

    def test_disable(self):
        v = Version("v", impl=lambda x: x)
        assert v.enabled
        v.disable()
        assert not v.enabled

    def test_cost_validation(self):
        with pytest.raises(ValueError):
            Version("v", impl=lambda x: x, exec_cost=-1)


class TestDictState:
    def test_capture_restore_roundtrip(self):
        state = DictState(items=[1, 2])
        snap = state.capture_state()
        state["items"].append(3)
        state.restore_state(snap)
        assert state["items"] == [1, 2]

    def test_capture_is_deep(self):
        state = DictState(items=[1])
        snap = state.capture_state()
        state.data["items"].append(2)
        # The snapshot must be unaffected by later mutation.
        state.restore_state(snap)
        assert state["items"] == [1]

    def test_mapping_protocol(self):
        state = DictState(a=1)
        state["b"] = 2
        assert "b" in state and state["b"] == 2

    def test_equality(self):
        assert DictState(a=1) == DictState(a=1)
        assert DictState(a=1) != DictState(a=2)


class TestComponent:
    def test_handle_uses_state(self):
        def handler(component, request, env):
            component.state["count"] = component.state.data.get("count", 0) + 1
            return component.state["count"]

        c = Component("c", handler)
        assert c.handle("r") == 1
        assert c.handle("r") == 2
        assert c.requests_served == 2

    def test_restartable_crash_and_restart(self):
        def handler(component, request, env):
            if request == "boom":
                raise CrashFailure("down")
            return "ok"

        c = RestartableComponent("c", handler,
                                 initializer=lambda: {"fresh": True})
        assert c.handle("x") == "ok"
        with pytest.raises(CrashFailure):
            c.handle("boom")
        assert c.down
        # Fails fast while down.
        with pytest.raises(CrashFailure):
            c.handle("x")
        c.restart()
        assert not c.down
        assert c.state["fresh"]
        assert c.restarts == 1
        assert c.handle("x") == "ok"

    def test_restart_cost_billed(self):
        env = SimEnvironment()
        c = RestartableComponent("c", lambda s, r, e: r, restart_cost=7.0)
        c.restart(env=env)
        assert env.clock.now == 7.0

    def test_restart_resets_state(self):
        c = RestartableComponent("c", lambda s, r, e: r,
                                 initializer=lambda: {"n": 0})
        c.state["n"] = 99
        c.restart()
        assert c.state["n"] == 0
