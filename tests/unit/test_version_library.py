"""Unit tests for diverse and correlated version populations."""

import pytest

from repro.components.library import (
    correlated_version_population,
    diverse_versions,
    shock_parameters,
)
from repro.exceptions import SimulatedFailure


def oracle(x):
    return 2 * x + 1


def _failure_rate(version, inputs):
    failures = 0
    for x in inputs:
        try:
            if version.execute(x) != oracle(x):
                failures += 1
        except SimulatedFailure:
            failures += 1
    return failures / len(inputs)


class TestDiverseVersions:
    def test_count_and_names(self):
        versions = diverse_versions(oracle, 4, 0.1, seed=0)
        assert len(versions) == 4
        assert len({v.name for v in versions}) == 4

    def test_failures_are_deterministic_per_input(self):
        (version,) = diverse_versions(oracle, 1, 0.5, seed=0)
        failing = [x for x in range(200)
                   if version.execute(x) != oracle(x)]
        again = [x for x in range(200)
                 if version.execute(x) != oracle(x)]
        assert failing == again
        assert failing  # p=0.5 over 200 inputs certainly fails somewhere

    def test_marginal_rate_close_to_p(self):
        (version,) = diverse_versions(oracle, 1, 0.2, seed=3)
        rate = _failure_rate(version, range(4000))
        assert 0.17 < rate < 0.23

    def test_versions_fail_on_different_inputs(self):
        versions = diverse_versions(oracle, 2, 0.3, seed=1)
        fail_sets = []
        for version in versions:
            fail_sets.append({x for x in range(500)
                              if version.execute(x) != oracle(x)})
        assert fail_sets[0] != fail_sets[1]

    def test_different_versions_produce_different_wrong_values(self):
        versions = diverse_versions(oracle, 2, 1.0, seed=1)
        assert versions[0].execute(7) != versions[1].execute(7)

    def test_seed_changes_population(self):
        a = diverse_versions(oracle, 1, 0.3, seed=1)[0]
        b = diverse_versions(oracle, 1, 0.3, seed=2)[0]
        fails_a = {x for x in range(300) if a.execute(x) != oracle(x)}
        fails_b = {x for x in range(300) if b.execute(x) != oracle(x)}
        assert fails_a != fails_b

    def test_validation(self):
        with pytest.raises(ValueError):
            diverse_versions(oracle, 0, 0.1)
        with pytest.raises(ValueError):
            diverse_versions(oracle, 3, 1.5)


class TestShockParameters:
    @pytest.mark.parametrize("p", [0.05, 0.2, 0.5])
    @pytest.mark.parametrize("rho", [0.0, 0.1, 0.3, 0.7, 1.0])
    def test_marginal_recovered(self, p, rho):
        c, u = shock_parameters(p, rho)
        assert c + (1 - c) * u == pytest.approx(p, abs=1e-6)

    @pytest.mark.parametrize("rho", [0.1, 0.4, 0.8])
    def test_correlation_recovered(self, rho):
        p = 0.2
        c, u = shock_parameters(p, rho)
        p11 = c + (1 - c) * u * u
        measured_rho = (p11 - p * p) / (p * (1 - p))
        assert measured_rho == pytest.approx(rho, abs=1e-6)

    def test_extremes(self):
        assert shock_parameters(0.3, 0.0) == (0.0, 0.3)
        c, u = shock_parameters(0.3, 1.0)
        assert c == pytest.approx(0.3) and u == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            shock_parameters(0.0, 0.5)
        with pytest.raises(ValueError):
            shock_parameters(0.2, 1.5)


class TestCorrelatedPopulation:
    def test_marginal_rate_preserved(self):
        versions = correlated_version_population(oracle, 3, 0.2, 0.5, seed=5)
        rate = _failure_rate(versions[0], range(3000))
        assert 0.17 < rate < 0.23

    def test_common_mode_inputs_fail_everywhere_with_same_value(self):
        versions = correlated_version_population(oracle, 4, 0.3, 0.9, seed=2)
        # Find an input where version 0 fails with the common-mode value.
        common_failures = []
        for x in range(2000):
            values = [v.execute(x) for v in versions]
            if all(value == values[0] != oracle(x) for value in values):
                common_failures.append(x)
        assert common_failures, "high correlation must produce common-mode " \
                                "failures"

    def test_zero_correlation_has_no_common_mode(self):
        versions = correlated_version_population(oracle, 3, 0.2, 0.0, seed=5)
        for x in range(500):
            values = [v.execute(x) for v in versions]
            wrong = [value for value in values if value != oracle(x)]
            # wrong values, when simultaneous, must differ across versions
            assert len(set(wrong)) == len(wrong)

    def test_pairwise_correlation_empirically(self):
        p, rho = 0.2, 0.5
        versions = correlated_version_population(oracle, 2, p, rho, seed=9)
        inputs = range(20_000)
        fails = []
        for version in versions:
            fails.append({x for x in inputs
                          if version.execute(x) != oracle(x)})
        both = len(fails[0] & fails[1]) / len(inputs)
        pa = len(fails[0]) / len(inputs)
        pb = len(fails[1]) / len(inputs)
        measured = (both - pa * pb) / (
            (pa * (1 - pa)) ** 0.5 * (pb * (1 - pb)) ** 0.5)
        assert measured == pytest.approx(rho, abs=0.05)
