"""Unit tests for robust data structures and software audits."""

import pytest

from repro.exceptions import DataCorruptionDetected
from repro.taxonomy.paper import paper_entry
from repro.techniques.robust_data import RobustLinkedList, SoftwareAudit


class TestHealthyList:
    def test_taxonomy_matches_paper(self):
        assert RobustLinkedList.TAXONOMY.matches(
            paper_entry("Robust data structures, audits"))

    def test_append_and_traverse(self):
        lst = RobustLinkedList([1, 2, 3])
        assert lst.to_list() == [1, 2, 3]
        assert len(lst) == 3

    def test_empty_list(self):
        lst = RobustLinkedList()
        assert lst.to_list() == []
        assert lst.audit() == []

    def test_healthy_audit_is_clean(self):
        assert RobustLinkedList(range(20)).audit() == []

    def test_healthy_repair_is_noop(self):
        report = RobustLinkedList(range(5)).repair()
        assert report.repaired and report.defects_found == 0


class TestSingleCorruption:
    def test_corrupt_next_detected(self):
        lst = RobustLinkedList(range(10))
        lst.corrupt_next(3)
        assert lst.audit()

    def test_corrupt_next_repaired_from_backward_chain(self):
        lst = RobustLinkedList(range(10))
        lst.corrupt_next(3)
        report = lst.repair()
        assert report.repaired
        assert lst.to_list() == list(range(10))
        assert lst.audit() == []

    def test_corrupt_prev_repaired_from_forward_chain(self):
        lst = RobustLinkedList(range(10))
        lst.corrupt_prev(6)
        report = lst.repair()
        assert report.repaired
        assert lst.to_list() == list(range(10))

    def test_corrupt_count_repaired(self):
        lst = RobustLinkedList(range(10))
        lst.corrupt_count(3)
        report = lst.repair()
        assert report.repaired
        assert len(lst) == 10

    def test_corrupt_next_to_valid_but_wrong_node(self):
        # Pointer redirected to an existing node (a cycle-ish lie).
        lst = RobustLinkedList(range(10))
        chain_ids = lst._reachable_forward()
        lst.corrupt_next(5, bogus_id=chain_ids[2])
        report = lst.repair()
        assert report.repaired
        assert lst.to_list() == list(range(10))

    def test_to_list_raises_on_unrepaired_damage(self):
        lst = RobustLinkedList(range(5))
        lst.corrupt_next(2)
        with pytest.raises(DataCorruptionDetected):
            lst.to_list()


class TestMultipleCorruptions:
    def test_opposite_side_damage_spliced(self):
        # next broken late, prev broken early: fragments still cover all.
        lst = RobustLinkedList(range(10))
        lst.corrupt_next(7)
        lst.corrupt_prev(2)
        report = lst.repair()
        assert report.repaired
        assert lst.to_list() == list(range(10))

    def test_same_link_double_damage_uncorrectable(self):
        # Both directions broken at the same gap: the middle is unreachable.
        lst = RobustLinkedList(range(10))
        lst.corrupt_next(4)
        lst.corrupt_prev(5)
        # Both chains cut at the 4-5 boundary; forward covers 0..4,
        # backward covers 5..9 => splice can actually reconstruct this.
        report = lst.repair()
        assert report.repaired

    def test_shredded_list_detected_but_not_correctable(self):
        lst = RobustLinkedList(range(10))
        lst.corrupt_next(2)
        lst.corrupt_next(5)
        lst.corrupt_prev(4)
        lst.corrupt_prev(8)
        with pytest.raises(DataCorruptionDetected):
            lst.repair()


class TestSoftwareAudit:
    def test_audit_runs_on_schedule(self):
        lst = RobustLinkedList(range(5))
        audit = SoftwareAudit(lst, every=3)
        assert audit.guard() is None
        assert audit.guard() is None
        report = audit.guard()
        assert report is not None and report.repaired
        assert audit.audits == 1

    def test_audit_repairs_latent_damage(self):
        lst = RobustLinkedList(range(8))
        audit = SoftwareAudit(lst, every=2)
        lst.corrupt_next(3)
        audit.guard()
        report = audit.guard()
        assert report.defects_found > 0 and report.repaired
        assert audit.repairs == 1
        assert lst.to_list() == list(range(8))

    def test_period_validated(self):
        with pytest.raises(ValueError):
            SoftwareAudit(RobustLinkedList(), every=0)
