"""Unit tests for the campaign acceptance gates."""

import pytest

# "tests_gate" is aliased so pytest doesn't collect the import as a
# test function.
from repro.harness.gates import (CONFIDENCE_HIGH, CONFIDENCE_LOW,
                                 CONFIDENCE_MEDIUM, VERDICT_SCHEMA,
                                 bench_gate, drift_gate,
                                 evaluate_campaign)
from repro.harness.gates import tests_gate as matrix_gate
from repro.harness.report import render_verdict
from repro.observe.sli import diff_reports


def _cell(protector, fault, correct, requests=120):
    return {"protector": protector, "fault": fault,
            "survival_rate": correct, "correct_rate": correct,
            "requests": requests}


def _report(requests=120, degrade=False):
    correct_protected = 0.2 if degrade else 0.9
    cells = []
    for fault in ("bohrbug", "heisenbug"):
        cells.append(_cell("retry", fault, correct_protected, requests))
        cells.append(_cell("unprotected", fault, 0.5, requests))
    return {"schema": "repro-campaign-report/v1", "requests": requests,
            "cells": cells,
            "sli": {"schema": "repro-sli-report/v2", "window": 256,
                    "techniques": [
                        {"technique": "retry", "availability": 0.9,
                         "failure_rate": 0.1, "outcomes_seen": 100,
                         "failures_seen": 10, "recoveries_seen": 0}],
                    "stores": []}}


class TestTestsGate:
    def test_passes_a_sane_matrix_with_high_confidence(self):
        result = matrix_gate(_report(requests=120))
        assert result.passed is True
        assert result.confidence == CONFIDENCE_HIGH

    def test_confidence_tracks_workload(self):
        assert matrix_gate(_report(requests=40)).confidence \
            == CONFIDENCE_MEDIUM
        assert matrix_gate(_report(requests=10)).confidence \
            == CONFIDENCE_LOW

    def test_fails_when_protection_hurts(self):
        result = matrix_gate(_report(degrade=True))
        assert result.passed is False
        assert "best protected" in result.detail

    def test_fails_on_out_of_range_rates(self):
        report = _report()
        report["cells"][0]["correct_rate"] = 1.5
        result = matrix_gate(report)
        assert result.passed is False
        assert "outside [0, 1]" in result.detail

    def test_fails_on_empty_report(self):
        assert matrix_gate({"cells": []}).passed is False

    def test_accepts_cell_objects_too(self):
        from repro.harness.campaign import CampaignCell

        cells = [CampaignCell(protector="retry", fault="f",
                              survival_rate=0.9, correct_rate=0.9,
                              requests=120),
                 CampaignCell(protector="unprotected", fault="f",
                              survival_rate=0.3, correct_rate=0.3,
                              requests=120)]
        assert matrix_gate({"cells": cells}).passed is True


class TestDriftGate:
    def test_skipped_without_baseline(self):
        result = drift_gate(_report(), None)
        assert result.passed is None
        assert "skipped" in result.detail

    def test_passes_against_itself(self):
        result = drift_gate(_report(), _report())
        assert result.passed is True
        assert result.confidence == CONFIDENCE_HIGH

    def test_tolerance_softens_rate_drift(self):
        baseline = _report()
        baseline["sli"]["techniques"][0]["availability"] = 0.88
        baseline["sli"]["techniques"][0]["failure_rate"] = 0.12
        strict = drift_gate(_report(), baseline, tolerance=0.0)
        assert strict.passed is False
        soft = drift_gate(_report(), baseline, tolerance=0.05)
        assert soft.passed is True
        assert soft.confidence == CONFIDENCE_MEDIUM

    def test_count_drift_ignores_tolerance(self):
        baseline = _report()
        baseline["sli"]["techniques"][0]["outcomes_seen"] = 99
        result = drift_gate(_report(), baseline, tolerance=0.5)
        assert result.passed is False
        assert "outcomes_seen" in result.detail

    def test_unreadable_baseline_fails_closed(self):
        result = drift_gate(_report(), {"sli": {"schema": "bogus/v9"}})
        assert result.passed is False


class TestBenchGate:
    def test_skipped_without_document(self):
        assert bench_gate(None).passed is None

    def test_accepts_clean_v1_and_v2_layouts(self):
        flat = {"schema": "repro-bench-harness/v1",
                "benchmarks": [{"name": f"b{i}"} for i in range(6)],
                "failures": [], "results_drift": []}
        assert bench_gate(flat).passed is True
        assert bench_gate(flat).confidence == CONFIDENCE_HIGH
        sectioned = {"schema": "repro-bench-harness/v2",
                     "suite": dict(flat)}
        assert bench_gate(sectioned).passed is True

    def test_fails_on_failures_or_drift(self):
        doc = {"benchmarks": [{"name": "b"}], "failures": ["b"],
               "results_drift": []}
        result = bench_gate(doc)
        assert result.passed is False
        assert "failed claim: b" in result.detail
        drifted = {"benchmarks": [{"name": "b"}, {"name": "c"}],
                   "failures": [], "results_drift": ["T1.txt"]}
        assert bench_gate(drifted).passed is False


class TestVerdict:
    def test_accepted_verdict_shape(self):
        verdict = evaluate_campaign(_report())
        assert verdict["schema"] == VERDICT_SCHEMA
        assert verdict["is_accepted"] is True
        assert verdict["gates_passed"] == ["tests"]
        assert sorted(verdict["gates_skipped"]) \
            == ["bench-regression", "telemetry-drift"]
        assert len(verdict["gates"]) == 3

    def test_any_failed_gate_rejects(self):
        verdict = evaluate_campaign(_report(degrade=True))
        assert verdict["is_accepted"] is False
        assert verdict["gates_failed"] == ["tests"]

    def test_confidence_is_the_weakest_evaluated(self):
        verdict = evaluate_campaign(
            _report(requests=40), baseline=_report(requests=40))
        assert verdict["confidence"] == CONFIDENCE_MEDIUM
        low = evaluate_campaign(_report(requests=5))
        assert low["confidence"] == CONFIDENCE_LOW

    def test_skipped_gates_never_fail_a_verdict(self):
        verdict = evaluate_campaign(_report())
        assert "telemetry-drift" not in verdict["gates_failed"]
        assert verdict["is_accepted"] is True

    def test_render_verdict_is_readable(self):
        text = render_verdict(evaluate_campaign(_report()))
        assert "ACCEPTED" in text
        assert "tests" in text and "SKIP" in text
        rejected = render_verdict(
            evaluate_campaign(_report(degrade=True)))
        assert "REJECTED" in rejected


class TestDiffReports:
    def _sli(self, availability=0.9, outcomes=100):
        return {"schema": "repro-sli-report/v2", "window": 256,
                "techniques": [
                    {"technique": "t", "availability": availability,
                     "failure_rate": 1 - availability,
                     "outcomes_seen": outcomes, "failures_seen": 0,
                     "recoveries_seen": 0}],
                "stores": []}

    def test_identical_reports_have_no_drift(self):
        assert diff_reports(self._sli(), self._sli()) == []

    def test_v1_baseline_upgrades_cleanly(self):
        legacy = self._sli()
        legacy["schema"] = "repro-sli-report/v1"
        for row in legacy["techniques"]:
            row.pop("recoveries_seen", None)
        current = self._sli()
        current["techniques"][0]["recoveries_seen"] = None
        assert diff_reports(current, legacy) == []

    def test_technique_set_changes_are_reported(self):
        other = self._sli()
        other["techniques"][0]["technique"] = "other"
        drift = diff_reports(self._sli(), other)
        assert any("missing" in line for line in drift)
        assert any("absent" in line for line in drift)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            diff_reports(self._sli(), self._sli(), tolerance=-1)
