"""Unit tests for the telemetry exporters (Chrome trace, OpenMetrics,
JSONL event log)."""

import json

import pytest

from repro.observe import EventBus, MetricsRegistry, Tracer
from repro.observe.export import (
    chrome_trace,
    render_chrome_trace,
    render_event_log,
    render_openmetrics,
    validate_chrome_trace,
)


def _nested_tracer():
    ticks = iter(float(i) for i in range(100))
    tracer = Tracer(now=lambda: next(ticks))
    with tracer.span("technique.execute", technique="nvp"):
        with tracer.span("unit.run", producer="v1", cost=1.0):
            pass
        with tracer.span("adjudicate", cost=0.5):
            pass
    return tracer


class TestChromeTrace:
    def test_document_validates_against_the_schema(self):
        doc = chrome_trace(_nested_tracer())
        validate_chrome_trace(doc)
        assert doc["displayTimeUnit"] == "ms"

    def test_b_e_pairs_are_balanced_and_nested(self):
        doc = chrome_trace(_nested_tracer())
        phases = [e["ph"] for e in doc["traceEvents"]]
        assert phases == ["B", "B", "E", "B", "E", "E"]
        names = [e["name"] for e in doc["traceEvents"]]
        assert names[0] == "technique.execute"
        assert names[-1] == "technique.execute"

    def test_timestamps_scale_to_microseconds(self):
        doc = chrome_trace(_nested_tracer(), time_scale=1000.0)
        begin = doc["traceEvents"][0]
        assert begin["ts"] == 0.0
        inner = doc["traceEvents"][1]
        assert inner["ts"] == 1000.0  # 1 virtual unit -> 1 ms -> 1000 us

    def test_args_carry_status_and_attrs(self):
        doc = chrome_trace(_nested_tracer())
        unit = next(e for e in doc["traceEvents"]
                    if e["name"] == "unit.run" and e["ph"] == "B")
        assert unit["args"]["producer"] == "v1"
        assert unit["args"]["cost"] == 1.0
        assert unit["args"]["status"] == "ok"

    def test_render_is_stable_json(self):
        tracer = _nested_tracer()
        text = render_chrome_trace(tracer)
        assert text == render_chrome_trace(tracer)
        validate_chrome_trace(json.loads(text))

    def test_open_span_closes_at_its_start(self):
        tracer = Tracer()
        tracer.start("never.finished")
        doc = chrome_trace(tracer)
        validate_chrome_trace(doc)

    def test_merged_trace_still_validates(self):
        parent = _nested_tracer()
        parent.merge(_nested_tracer().snapshot())
        validate_chrome_trace(chrome_trace(parent))

    def test_validator_rejects_missing_container(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"events": []})

    def test_validator_rejects_bad_phase(self):
        doc = {"traceEvents": [{"name": "x", "ph": "X", "ts": 0,
                                "pid": 1, "tid": 1}]}
        with pytest.raises(ValueError, match="phase"):
            validate_chrome_trace(doc)

    def test_validator_rejects_unbalanced_stream(self):
        doc = {"traceEvents": [{"name": "x", "ph": "B", "ts": 0,
                                "pid": 1, "tid": 1}]}
        with pytest.raises(ValueError, match="open"):
            validate_chrome_trace(doc)

    def test_validator_rejects_misnested_stream(self):
        events = [
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "B", "ts": 1, "pid": 1, "tid": 1},
            {"name": "a", "ph": "E", "ts": 2, "pid": 1, "tid": 1},
            {"name": "b", "ph": "E", "ts": 3, "pid": 1, "tid": 1},
        ]
        with pytest.raises(ValueError, match="ends"):
            validate_chrome_trace({"traceEvents": events})


class TestOpenMetrics:
    def _registry(self):
        registry = MetricsRegistry()
        registry.inc("requests_total", 5, technique="nvp")
        registry.set_gauge("depth", 2.0)
        for value in (1.0, 2.0, 30.0):
            registry.observe("recovery_cost", value)
        return registry

    def test_counter_family_drops_total_suffix_in_type_line(self):
        text = render_openmetrics(self._registry())
        assert "# TYPE requests counter" in text
        assert 'requests_total{technique="nvp"} 5' in text

    def test_histogram_quantiles_are_rendered(self):
        text = render_openmetrics(self._registry())
        assert 'recovery_cost_quantiles{quantile="0.5"}' in text
        assert 'recovery_cost_quantiles{quantile="0.95"}' in text
        assert 'recovery_cost_quantiles{quantile="0.99"}' in text

    def test_ends_with_eof(self):
        assert render_openmetrics(self._registry()).endswith("# EOF")

    def test_extends_the_prometheus_dump(self):
        registry = self._registry()
        for line in registry.render_prometheus().splitlines():
            if line.startswith("# TYPE"):
                continue
            assert line in render_openmetrics(registry)

    def test_exclude_prefix(self):
        registry = self._registry()
        registry.inc("repro_runtime_tasks_total", 2, backend="process")
        text = render_openmetrics(registry, exclude=("repro_runtime_",))
        assert "repro_runtime" not in text


class TestEventLog:
    def test_header_line_then_one_json_object_per_event(self):
        bus = EventBus()
        bus.publish("unit.outcome", pattern="nvp", ok=True)
        bus.publish("reboot", scope="micro", downtime=2.0)
        lines = render_event_log(bus).splitlines()
        assert len(lines) == 3
        header = json.loads(lines[0])
        assert header["schema"] == "repro-events-jsonl/v1"
        first = json.loads(lines[1])
        assert first["topic"] == "unit.outcome"
        assert first["payload"] == {"ok": True, "pattern": "nvp"}
        assert json.loads(lines[2])["seq"] == 1

    def test_empty_bus_renders_header_only(self):
        lines = render_event_log(EventBus()).splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["schema"] == "repro-events-jsonl/v1"
