"""ResultStore: content addressing, two tiers, cross-process safety.

The store's contract: a key is a ``PYTHONHASHSEED``-stable function of
(task, args digest, seed, code version); a value survives process exit;
concurrent writers sharing one log interleave whole records; and a
served result is byte-identical to a computed one — asserted here for
the raw store and for the ``store=`` knobs on ``run_trials`` and
``FaultCampaign``.
"""

import json
import os
import pathlib
import subprocess
import sys

from repro import observe
from repro.runtime.store import (
    MISS,
    ResultStore,
    args_digest,
    code_fingerprint,
    fingerprint,
)

SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")


# -- module-level (picklable, stable-source) sample tasks --


def add_one(x):
    return x + 1


def add_one_differently(x):
    return (x * 1) + 1


def seeded_trial(seed):
    return {"value": seed * 2.0, "tag": seed % 3}


class TestKeys:
    def test_args_digest_stable_for_common_shapes(self):
        digest = args_digest((1, "a", 2.5, {"k": (3, 4)}))
        assert digest == args_digest((1, "a", 2.5, {"k": (3, 4)}))
        assert digest != args_digest((1, "a", 2.5, {"k": (3, 5)}))

    def test_code_fingerprint_tracks_source(self):
        assert code_fingerprint(add_one) == code_fingerprint(add_one)
        assert code_fingerprint(add_one) \
            != code_fingerprint(add_one_differently)
        # Multi-callable fingerprints mix every source in.
        assert code_fingerprint(add_one, seeded_trial) \
            != code_fingerprint(add_one)

    def test_key_varies_with_every_part(self):
        store_key = fingerprint("task", "digest", 7, "code")
        assert fingerprint("task2", "digest", 7, "code") != store_key
        assert fingerprint("task", "digest2", 7, "code") != store_key
        assert fingerprint("task", "digest", 8, "code") != store_key
        assert fingerprint("task", "digest", 7, "code2") != store_key

    def test_key_is_hashseed_stable_across_interpreters(self, tmp_path):
        script = (
            "import sys; sys.path.insert(0, {src!r}); "
            "sys.path.insert(0, {here!r}); "
            "from test_runtime_store import add_one; "
            "from repro.runtime.store import ResultStore; "
            "s = ResultStore({path!r}); "
            "print(s.key(add_one, (1, 'a', (2, 3)), seed=7))"
        ).format(src=SRC,
                 here=str(pathlib.Path(__file__).resolve().parent),
                 path=str(tmp_path / "k.jsonl"))
        keys = set()
        for seed in ("0", "4242"):
            proc = subprocess.run(
                [sys.executable, "-c", script], capture_output=True,
                text=True, env={"PYTHONHASHSEED": seed,
                                "PATH": os.environ["PATH"]})
            assert proc.returncode == 0, proc.stderr
            keys.add(proc.stdout.strip())
        assert len(keys) == 1


class TestTwoTierStore:
    def test_round_trip_and_miss_sentinel(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        key = store.key(add_one, (1,), seed=0)
        assert store.get(key) is MISS
        store.put(key, None, task="add_one")  # stored None is a hit
        assert store.get(key) is None
        assert store.get(key) is None
        assert store.stats()["hits"] == 2
        assert store.stats()["entries"] == 1

    def test_get_or_call_computes_once(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        calls = []

        def tracked(x):
            calls.append(x)
            return x + 1

        assert store.get_or_call(tracked, 4, seed=1,
                                 task_name="tracked", code="v1") == 5
        assert store.get_or_call(tracked, 4, seed=1,
                                 task_name="tracked", code="v1") == 5
        assert calls == [4]

    def test_values_survive_process_exit(self, tmp_path):
        path = tmp_path / "s.jsonl"
        first = ResultStore(path)
        key = first.key(add_one, (10,), seed=2)
        first.put(key, {"deep": [1, (2, 3)]}, task="add_one")
        # A brand-new store over the same log serves from disk.
        second = ResultStore(path)
        assert second.get(key) == {"deep": [1, (2, 3)]}
        assert second.stats()["bytes_read"] > 0

    def test_code_version_invalidates(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        value = store.get_or_call(add_one, 1, seed=0)
        assert value == 2
        # Same name/args/seed, different source: a distinct address.
        key_v2 = store.key(f"{add_one.__module__}.{add_one.__qualname__}",
                           (1,), seed=0,
                           code=code_fingerprint(add_one_differently))
        assert store.get(key_v2) is MISS

    def test_refresh_sees_foreign_appends(self, tmp_path):
        path = tmp_path / "s.jsonl"
        reader = ResultStore(path, name="reader")
        writer = ResultStore(path, name="writer")
        key = writer.key("task", (1,), seed=0, code="v1")
        writer.put(key, "payload", task="task")
        # The reader's miss path notices the grown log and re-reads.
        assert reader.get(key) == "payload"

    def test_corrupt_lines_are_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        key = store.key("task", (1,), seed=0, code="v1")
        store.put(key, 42, task="task")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write(json.dumps({"no_key_field": 1}) + "\n")
        reloaded = ResultStore(path)
        assert reloaded.get(key) == 42
        assert reloaded.stats()["corrupt_lines"] == 2
        assert reloaded.stats()["entries"] == 1

    def test_torn_trailing_record_waits_for_next_refresh(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        key = store.key("task", (1,), seed=0, code="v1")
        store.put(key, 1, task="task")
        line = path.read_bytes().rstrip(b"\n")
        with open(path, "ab") as handle:
            handle.write(line[:len(line) // 2])  # torn, no newline
        reloaded = ResultStore(path)
        assert reloaded.get(key) == 1
        assert reloaded.stats()["corrupt_lines"] == 0
        with open(path, "ab") as handle:
            handle.write(line[len(line) // 2:] + b"\n")
        assert reloaded.refresh() == 0  # duplicate key: not re-indexed
        assert reloaded.stats()["corrupt_lines"] == 0

    def test_concurrent_writers_interleave_whole_records(self, tmp_path):
        path = tmp_path / "shared.jsonl"
        writers, per_writer = 4, 25
        script = (
            "import sys; sys.path.insert(0, {src!r}); "
            "from repro.runtime.store import ResultStore; "
            "s = ResultStore({path!r}); "
            "wid = int(sys.argv[1]); "
            "[s.put(s.key('task', (wid, i), seed=0, code='v1'),"
            " {{'w': wid, 'i': i, 'pad': 'x' * 200}}, task='task')"
            " for i in range({n})]"
        ).format(src=SRC, path=str(path), n=per_writer)
        procs = [subprocess.Popen([sys.executable, "-c", script, str(w)],
                                  stderr=subprocess.PIPE)
                 for w in range(writers)]
        for proc in procs:
            _, stderr = proc.communicate()
            assert proc.returncode == 0, stderr.decode()
        merged = ResultStore(path)
        assert merged.stats()["corrupt_lines"] == 0
        assert merged.stats()["entries"] == writers * per_writer
        for w in range(writers):
            for i in range(per_writer):
                key = merged.key("task", (w, i), seed=0, code="v1")
                assert merged.get(key) == {"w": w, "i": i,
                                           "pad": "x" * 200}

    def test_counters_flow_into_telemetry(self, tmp_path):
        with observe.session() as tel:
            store = ResultStore(tmp_path / "s.jsonl", name="unit")
            store.get_or_call(add_one, 1, seed=0)
            store.get_or_call(add_one, 1, seed=0)
        metrics = tel.metrics.as_dict()
        assert metrics['repro_runtime_store_hits_total{store="unit"}'] \
            == 1.0
        assert metrics['repro_runtime_store_misses_total{store="unit"}'] \
            == 1.0
        assert metrics['repro_runtime_store_writes_total{store="unit"}'] \
            == 1.0
        topics = [e.topic for e in tel.bus.history]
        assert topics.count("store.miss") == 1
        assert topics.count("store.write") == 1
        assert topics.count("store.hit") == 1


class TestBatchedPuts:
    def test_put_many_round_trips_and_counts(self, tmp_path):
        store = ResultStore(tmp_path / "b.jsonl", name="batch")
        entries = [{"key": store.key("task", (i,), seed=0, code="v1"),
                    "value": {"i": i}, "task": "task", "seed": 0}
                   for i in range(5)]
        store.put_many(entries)
        for entry in entries:
            assert store.get(entry["key"]) == entry["value"]
        assert store.stats()["writes"] == 5
        assert store.stats()["puts_batched"] == 5
        # One append: the log grew once, in whole records.
        fresh = ResultStore(tmp_path / "b.jsonl", name="batch2")
        assert fresh.stats()["entries"] == 5
        assert fresh.stats()["corrupt_lines"] == 0

    def test_put_many_carries_trials_accounting(self, tmp_path):
        store = ResultStore(tmp_path / "b.jsonl", name="batch")
        key = store.key("batched", ("cell",), seed=1)
        store.put_many([{"key": key, "value": [1, 2, 3],
                         "task": "batched", "seed": 1, "trials": 3}])
        assert store.stats()["trials_stored"] == 3
        served = ResultStore(tmp_path / "b.jsonl", name="reader")
        assert served.get(key) == [1, 2, 3]
        assert served.stats()["trials_served"] == 3

    def test_empty_batch_is_a_no_op(self, tmp_path):
        store = ResultStore(tmp_path / "b.jsonl", name="batch")
        store.put_many([])
        assert store.stats()["writes"] == 0
        assert not os.path.exists(store.path) \
            or not os.path.getsize(store.path)

    def test_quiet_store_keeps_counters_but_not_telemetry(self, tmp_path):
        with observe.session() as tel:
            store = ResultStore(tmp_path / "q.jsonl", name="hush",
                                quiet=True)
            store.get_or_call(add_one, 1, seed=0)
            store.get_or_call(add_one, 1, seed=0)
            store.put_many([{"key": store.key("t", (9,), seed=0),
                             "value": 9}])
        assert store.stats()["hits"] == 1
        assert store.stats()["misses"] == 1
        assert store.stats()["writes"] == 2
        rendered = json.dumps(tel.snapshot(), sort_keys=True, default=str)
        assert "repro_runtime_store" not in rendered
        assert "store.hit" not in rendered and "hush" not in rendered
        assert "repro_cache" not in rendered

    def test_experiment_miss_tail_is_one_batch(self, tmp_path):
        from repro.harness.experiment import run_trials

        store = ResultStore(tmp_path / "t.jsonl")
        run_trials(seeded_trial, range(4), store=store)
        assert store.stats()["puts_batched"] == 4
        run_trials(seeded_trial, range(6), store=store)
        # Only the two missing seeds joined the second batch.
        assert store.stats()["puts_batched"] == 6


class TestHarnessWiring:
    def test_run_trials_store_is_byte_identical(self, tmp_path):
        from repro.harness.experiment import run_trials

        plain = run_trials(seeded_trial, range(6))
        store = ResultStore(tmp_path / "t.jsonl")
        cold = run_trials(seeded_trial, range(6), store=store)
        warm = run_trials(seeded_trial, range(6), store=store)
        assert repr(cold) == repr(warm) == repr(plain)
        assert store.stats()["writes"] == 6
        assert store.stats()["hits"] == 6

    def test_run_trials_partial_hits_compute_only_missing(self, tmp_path):
        from repro.harness.experiment import run_trials

        store = ResultStore(tmp_path / "t.jsonl")
        run_trials(seeded_trial, range(4), store=store)
        extended = run_trials(seeded_trial, range(6), store=store)
        assert store.stats()["writes"] == 6  # only seeds 4 and 5 ran
        assert [r.seed for r in extended] == list(range(6))

    def test_campaign_store_round_trip_and_fanout(self, tmp_path):
        from tests.unit.test_parallel_harness import CAMPAIGN_KWARGS
        from repro.harness.campaign import FaultCampaign

        plain = FaultCampaign(**CAMPAIGN_KWARGS).run()
        store = ResultStore(tmp_path / "c.jsonl")
        cold = FaultCampaign(**CAMPAIGN_KWARGS, store=store).run()
        warm = FaultCampaign(**CAMPAIGN_KWARGS, store=store).run()
        # The store never ships to workers (__getstate__ strips it), so
        # pooled fan-out serves parent-side hits like the serial path.
        pooled = FaultCampaign(**CAMPAIGN_KWARGS, store=store,
                               workers=3, backend="process").run()
        assert cold == warm == pooled == plain
        assert store.stats()["writes"] == len(plain)

    def test_campaign_run_cell_uses_store(self, tmp_path):
        from tests.unit.test_parallel_harness import CAMPAIGN_KWARGS
        from repro.harness.campaign import FaultCampaign

        store = ResultStore(tmp_path / "c.jsonl")
        campaign = FaultCampaign(**CAMPAIGN_KWARGS, store=store)
        cell = campaign.run_cell("retry", "bohrbug")
        assert campaign.run_cell("retry", "bohrbug") == cell
        assert store.stats()["writes"] == 1
        assert store.stats()["hits"] == 1

    def test_campaign_code_change_invalidates_cells(self, tmp_path):
        from tests.unit.test_parallel_harness import CAMPAIGN_KWARGS, retry_protector
        from repro.harness.campaign import FaultCampaign

        store = ResultStore(tmp_path / "c.jsonl")
        FaultCampaign(**CAMPAIGN_KWARGS, store=store).run()
        writes = store.stats()["writes"]

        def retry_protector_v2(faulty, env):  # different source
            return retry_protector(faulty, env)

        kwargs = dict(CAMPAIGN_KWARGS,
                      protectors={"retry": retry_protector_v2})
        FaultCampaign(**kwargs, store=store).run()
        # The edited protector's cells re-ran; the untouched
        # "unprotected" baseline cells were served.
        assert store.stats()["writes"] > writes
        assert store.stats()["hits"] > 0
