"""Unit tests for rejuvenation, checkpointed execution, and
checkpoint-recovery."""

import pytest

from repro.environment import SimEnvironment
from repro.exceptions import NoCheckpointError
from repro.faults.development import AgingBug, Bohrbug, Heisenbug, InputRegion
from repro.faults.injector import FaultyFunction
from repro.taxonomy.paper import paper_entry
from repro.techniques.checkpoint_recovery import CheckpointRecovery
from repro.techniques.rejuvenation import (
    CheckpointedExecution,
    Rejuvenation,
    RejuvenationPolicy,
)


class TestRejuvenationPolicy:
    def test_age_trigger(self):
        env = SimEnvironment()
        policy = RejuvenationPolicy(max_age=10)
        assert not policy.due(env, 0)
        env.do_work(10)
        assert policy.due(env, 0)

    def test_request_trigger(self):
        policy = RejuvenationPolicy(every_requests=5)
        env = SimEnvironment()
        assert not policy.due(env, 4)
        assert policy.due(env, 5)

    def test_needs_a_trigger(self):
        with pytest.raises(ValueError):
            RejuvenationPolicy()
        with pytest.raises(ValueError):
            RejuvenationPolicy(max_age=0)
        with pytest.raises(ValueError):
            RejuvenationPolicy(every_requests=-1)


class TestRejuvenation:
    def test_taxonomy_matches_paper(self):
        assert Rejuvenation.TAXONOMY.matches(paper_entry("Rejuvenation"))

    def test_rejuvenates_on_age(self):
        env = SimEnvironment()
        tech = Rejuvenation(env, RejuvenationPolicy(max_age=5))
        env.do_work(6)
        assert tech.maybe_rejuvenate()
        assert env.age == 0
        assert tech.rejuvenations == 1

    def test_rejuvenates_every_n_requests(self):
        env = SimEnvironment()
        tech = Rejuvenation(env, RejuvenationPolicy(every_requests=3))
        fired = [tech.maybe_rejuvenate() for _ in range(8)]
        assert fired.count(True) == 2

    def test_preventive_rejuvenation_avoids_aging_failures(self):
        # An aging bug that saturates at age 200; rejuvenating at age 50
        # keeps its probability at <= 0.25 * max instead of 1.0 * max.
        bug = AgingBug("a", max_probability=1.0, age_to_saturation=200)
        task = FaultyFunction(lambda: "ok", faults=[bug], cost=10.0)

        def run(with_rejuvenation):
            env = SimEnvironment(seed=7)
            tech = Rejuvenation(env, RejuvenationPolicy(max_age=50))
            failures = 0
            for _ in range(100):
                if with_rejuvenation:
                    tech.maybe_rejuvenate()
                try:
                    task(env=env)
                except Exception:
                    failures += 1
            return failures

        assert run(True) < run(False)


class TestCheckpointedExecution:
    def _segment(self, work=10.0, bug=None):
        faults = [bug] if bug is not None else []
        task = FaultyFunction(lambda: None, faults=faults, cost=work)

        def segment(env):
            task(env=env)
        return segment

    def test_completes_without_faults(self):
        env = SimEnvironment()
        run = CheckpointedExecution(env, self._segment(), segments=10,
                                    rejuvenate_every=3)
        report = run.run()
        assert report.completed
        assert report.checkpoints == 10
        assert report.rejuvenations == 3
        assert report.failures == 0

    def test_aging_failures_rolled_back_and_retried(self):
        bug = AgingBug("a", max_probability=0.8, age_to_saturation=100)
        env = SimEnvironment(seed=3)
        run = CheckpointedExecution(env, self._segment(bug=bug),
                                    segments=20, rejuvenate_every=2)
        report = run.run()
        assert report.completed

    def test_rejuvenation_reduces_completion_time_under_aging(self):
        bug = AgingBug("a", max_probability=0.9, age_to_saturation=300)

        def time_with(every):
            env = SimEnvironment(seed=5)
            run = CheckpointedExecution(env, self._segment(bug=bug),
                                        segments=30,
                                        rejuvenate_every=every,
                                        max_retries_per_segment=10_000)
            report = run.run()
            assert report.completed
            return report.virtual_time

        assert time_with(3) < time_with(None)

    def test_validation(self):
        env = SimEnvironment()
        with pytest.raises(ValueError):
            CheckpointedExecution(env, self._segment(), segments=0)
        with pytest.raises(ValueError):
            CheckpointedExecution(env, self._segment(), segments=1,
                                  rejuvenate_every=0)


class TestCheckpointRecovery:
    def test_taxonomy_matches_paper(self):
        assert CheckpointRecovery.TAXONOMY.matches(
            paper_entry("Checkpoint-recovery"))

    def test_rollback_before_checkpoint_rejected(self):
        cr = CheckpointRecovery(SimEnvironment())
        with pytest.raises(NoCheckpointError):
            cr.rollback()

    def test_completes_clean_run(self):
        env = SimEnvironment()
        steps = [lambda e: e.do_work(1) for _ in range(12)]
        report = CheckpointRecovery(env, interval=4).run(steps)
        assert report.completed and report.steps_done == 12
        assert report.rollbacks == 0

    def test_survives_heisenbugs(self):
        env = SimEnvironment(seed=2)
        task = FaultyFunction(lambda: None,
                              faults=[Heisenbug("h", probability=0.4)])
        steps = [lambda e: task(env=e) for _ in range(30)]
        report = CheckpointRecovery(env, interval=3).run(steps)
        assert report.completed
        assert report.rollbacks > 0

    def test_does_not_survive_bohrbugs(self):
        env = SimEnvironment(seed=2)
        task = FaultyFunction(lambda x: x,
                              faults=[Bohrbug("b",
                                              region=InputRegion(0, 10))])
        steps = [lambda e: task(5, env=e)]
        report = CheckpointRecovery(env, interval=1,
                                    max_rollbacks_per_step=7).run(steps)
        assert not report.completed
        assert report.rollbacks == 7

    def test_state_subject_rolled_back(self):
        from repro.components.state import DictState
        env = SimEnvironment(seed=0)
        state = DictState(log=[])
        calls = {"n": 0}

        def step(e):
            calls["n"] += 1
            state["log"].append(calls["n"])
            if calls["n"] == 1:
                from repro.exceptions import HeisenbugFailure
                raise HeisenbugFailure("once")

        cr = CheckpointRecovery(env, subject=state, interval=1)
        report = cr.run([step])
        assert report.completed
        # First attempt's partial write was rolled back.
        assert state["log"] == [2]

    def test_overhead_scales_with_interval(self):
        def time_with(interval):
            env = SimEnvironment()
            steps = [lambda e: e.do_work(1) for _ in range(40)]
            report = CheckpointRecovery(env, interval=interval,
                                        checkpoint_cost=5.0).run(steps)
            return report.virtual_time

        # Fewer checkpoints => less overhead on a failure-free run.
        assert time_with(20) < time_with(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointRecovery(SimEnvironment(), interval=0)
        with pytest.raises(ValueError):
            CheckpointRecovery(SimEnvironment(), max_rollbacks_per_step=0)
