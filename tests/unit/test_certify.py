"""Runtime enforcement of determinism certificates (certify=)."""

import os
import warnings

import pytest

from repro.exceptions import CertificationError
from repro.harness.experiment import Experiment, run_trials
from repro.lint import LintEngine
from repro.lint.deep import Certificate, CertificationWarning
from tests.fixtures import deep_helpers, deep_planted

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.relpath(os.path.join(HERE, "..", "fixtures"))
HELPERS = os.path.join(FIXTURES, "deep_helpers.py")
PLANTED = os.path.join(FIXTURES, "deep_planted.py")


@pytest.fixture(scope="module")
def certificate():
    engine = LintEngine(deep=True)
    engine.run([HELPERS, PLANTED])
    return Certificate(engine.analysis.certificate())


class TestCleanTask:
    def test_certified_batched_run_is_byte_identical(self, certificate):
        seeds = list(range(8))
        plain = run_trials(deep_planted.clean_trial, seeds, batch=4)
        certified = run_trials(deep_planted.clean_trial, seeds, batch=4,
                               certify=certificate)
        assert certified == plain  # enforcement never touches RNG/clock

    def test_no_warning_for_clean_task(self, certificate):
        with warnings.catch_warnings():
            warnings.simplefilter("error", CertificationWarning)
            run_trials(deep_planted.clean_trial, [1, 2],
                       certify=certificate)

    def test_certificate_path_accepted(self, certificate, tmp_path):
        path = str(tmp_path / "cert.json")
        certificate.save(path)
        results = run_trials(deep_planted.clean_trial, [3], certify=path)
        assert results == run_trials(deep_planted.clean_trial, [3])


class TestHazardousTask:
    def test_blocked_under_batch_before_any_execution(self, certificate):
        before = len(deep_helpers._LEDGER)
        with pytest.raises(CertificationError) as excinfo:
            run_trials(deep_planted.impure_trial, list(range(4)),
                       batch=2, certify=certificate)
        assert len(deep_helpers._LEDGER) == before  # nothing ran
        message = str(excinfo.value)
        assert "not certified pure" in message
        assert "_LEDGER.append" in message
        assert "audited -> record" in message  # evidence chain

    def test_blocked_under_store(self, certificate, tmp_path):
        from repro.runtime.store import ResultStore

        store = ResultStore(str(tmp_path / "r.jsonl"))
        with pytest.raises(CertificationError):
            run_trials(deep_planted.clock_trial, [0], store=store,
                       certify=certificate)
        assert len(store) == 0

    def test_advisory_warning_on_plain_run(self, certificate):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            results = run_trials(deep_planted.clock_trial, [1],
                                 certify=certificate)
        assert len(results) == 1  # the run proceeded
        assert [w.category for w in caught] == [CertificationWarning]
        assert "not certified deterministic" in str(caught[0].message)

    def test_every_planted_entry_blocks_strict(self, certificate):
        for trial in (deep_planted.clock_trial,
                      deep_planted.entropy_trial,
                      deep_planted.env_trial,
                      deep_planted.pickle_trial,
                      deep_planted.impure_trial):
            with pytest.raises(CertificationError):
                Experiment(name="x", trial=trial, seeds=(0,),
                           batch=1, certify=certificate).run()


class TestCertificateEdgeCases:
    def test_uncertified_task_is_a_problem(self, certificate):
        def unlisted_trial(seed):
            return {"value": float(seed)}

        with pytest.raises(CertificationError) as excinfo:
            run_trials(unlisted_trial, [0], batch=1,
                       certify=certificate)
        assert "no entry in the certificate" in str(excinfo.value)

    def test_stale_certificate_detected(self, certificate):
        payload = certificate.payload
        key = "tests.fixtures.deep_planted:clean_trial"
        stale = {
            "version": payload["version"],
            "functions": {key: dict(payload["functions"][key],
                                    code="0" * 16)},
        }
        with pytest.raises(CertificationError) as excinfo:
            run_trials(deep_planted.clean_trial, [0], batch=1,
                       certify=Certificate(stale))
        assert "stale certificate" in str(excinfo.value)

    def test_version_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Certificate({"version": "determinism-certificate/v999",
                         "functions": {}})

    def test_no_certify_means_no_check(self):
        # The knob is opt-in: hazardous tasks run unimpeded without it.
        results = run_trials(deep_planted.impure_trial, [0], batch=1)
        assert len(results) == 1

    def test_telemetry_counts_verdicts(self, certificate):
        from repro import observe

        with observe.session() as tel:
            run_trials(deep_planted.clean_trial, [1],
                       certify=certificate)
            with pytest.raises(CertificationError):
                run_trials(deep_planted.clock_trial, [1], batch=1,
                           certify=certificate)
        metrics = tel.metrics.as_dict()
        assert metrics['repro_certify_checks_total{verdict="ok"}'] == 1
        assert metrics[
            'repro_certify_checks_total{verdict="blocked"}'] == 1


class TestCampaignCertify:
    def test_campaign_checks_oracle_and_protectors(self, certificate):
        from repro.faults.development import Bohrbug, InputRegion
        from repro.harness.campaign import FaultCampaign

        from repro.harness.campaign import _unprotected

        campaign = FaultCampaign(
            protectors={"bare": _unprotected},
            faults={"bohrbug": lambda: Bohrbug(
                "b", region=InputRegion(0, 3))},
            requests=5, batch=1, certify=certificate)
        # Neither the default oracle nor the protector factories appear
        # in the fixtures' certificate -> strict mode refuses to run.
        with pytest.raises(CertificationError) as excinfo:
            campaign.run()
        assert "no entry in the certificate" in str(excinfo.value)

    def test_campaign_advisory_without_batch_or_store(self, certificate):
        from repro.faults.development import Bohrbug, InputRegion
        from repro.harness.campaign import FaultCampaign

        from repro.harness.campaign import _unprotected

        campaign = FaultCampaign(
            protectors={"bare": _unprotected},
            faults={"bohrbug": lambda: Bohrbug(
                "b", region=InputRegion(0, 3))},
            requests=5, certify=certificate)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cells = campaign.run()
        assert cells  # advisory mode lets the matrix run
        assert CertificationWarning in [w.category for w in caught]
