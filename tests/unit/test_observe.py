"""Unit tests for the repro.observe telemetry subsystem."""

import json

import pytest

from repro import observe
from repro.observe import EventBus, MetricsRegistry, Telemetry, Tracer
from repro.observe.telemetry import _SeqClock


class TestTracer:
    def test_nesting_and_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert [s.name for s in tracer.spans] == ["outer", "inner"]

    def test_sequence_numbers_are_monotonic(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("s"):
                pass
        assert [s.seq for s in tracer.spans] == [0, 1, 2]

    def test_timestamps_come_from_clock(self):
        ticks = iter([1.0, 2.5])
        tracer = Tracer(now=lambda: next(ticks))
        with tracer.span("work") as span:
            pass
        assert span.start == 1.0 and span.end == 2.5
        assert span.duration == 1.5

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("bad"):
                raise RuntimeError("boom")
        assert tracer.spans[0].status == "error"
        assert tracer.spans[0].end is not None

    def test_explicit_status_survives_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("checked") as span:
                span.status = "rejected"
                raise RuntimeError("boom")
        assert tracer.spans[0].status == "rejected"

    def test_find_filters_by_attrs(self):
        tracer = Tracer()
        with tracer.span("unit.run", producer="a"):
            pass
        with tracer.span("unit.run", producer="b"):
            pass
        assert len(tracer.find("unit.run")) == 2
        assert [s.attrs["producer"]
                for s in tracer.find("unit.run", producer="b")] == ["b"]

    def test_total_cost_sums_cost_attrs(self):
        tracer = Tracer()
        for cost in (1.0, 2.5, 0.5):
            with tracer.span("unit.run") as span:
                span.attrs["cost"] = cost
        assert tracer.total_cost("unit.run") == 4.0

    def test_capacity_drops_spans_but_keeps_count(self):
        tracer = Tracer(capacity=2)
        for _ in range(5):
            with tracer.span("s"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.started == 5
        assert "3 spans dropped" in tracer.timeline()

    def test_export_jsonl_round_trips(self):
        tracer = Tracer()
        with tracer.span("outer", pattern="nvp"):
            with tracer.span("inner"):
                pass
        rows = [json.loads(line)
                for line in tracer.export_jsonl().splitlines()]
        assert [r["name"] for r in rows] == ["outer", "inner"]
        assert rows[0]["attrs"] == {"pattern": "nvp"}
        assert rows[1]["parent_id"] == rows[0]["span_id"]

    def test_timeline_indents_children_and_elides(self):
        tracer = Tracer()
        with tracer.span("outer"):
            for _ in range(3):
                with tracer.span("inner"):
                    pass
        text = tracer.timeline(limit=2)
        assert "  inner" in text
        assert "2 more spans" in text


class TestMetrics:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        registry.inc("hits_total")
        registry.inc("hits_total", 2.0)
        assert registry.value("hits_total") == 3.0
        with pytest.raises(ValueError):
            registry.counter("hits_total").inc(-1)

    def test_labels_create_distinct_series(self):
        registry = MetricsRegistry()
        registry.inc("runs_total", pattern="nvp")
        registry.inc("runs_total", pattern="rb")
        registry.inc("runs_total", pattern="nvp")
        assert registry.value("runs_total", pattern="nvp") == 2.0
        assert registry.value("runs_total", pattern="rb") == 1.0
        assert registry.value("runs_total", pattern="none") == 0.0

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        registry.set_gauge("depth", 5.0)
        registry.gauge("depth").add(-2.0)
        assert registry.value("depth") == 3.0

    def test_histogram_statistics(self):
        registry = MetricsRegistry()
        for v in (1.0, 4.0, 10.0):
            registry.observe("latency", v)
        hist = registry.histogram("latency")
        assert hist.count == 3
        assert hist.sum == 15.0
        assert hist.mean == 5.0
        assert hist.min == 1.0 and hist.max == 10.0

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        for v in (0.4, 1.5, 3.0):
            registry.observe("cost", v, buckets=(1.0, 2.0, 5.0))
        hist = registry.histogram("cost", buckets=(1.0, 2.0, 5.0))
        assert hist.bucket_counts == [1, 2, 3]

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.inc("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_render_prometheus_format(self):
        registry = MetricsRegistry()
        registry.inc("reboots_total", scope="micro")
        registry.observe("downtime", 2.0, buckets=(1.0, 5.0))
        text = registry.render_prometheus()
        assert "# TYPE reboots_total counter" in text
        assert 'reboots_total{scope="micro"} 1' in text
        assert 'downtime_bucket{le="5"} 1' in text
        assert 'downtime_bucket{le="+Inf"} 1' in text
        assert "downtime_sum 2" in text

    def test_as_dict_flattens_samples(self):
        registry = MetricsRegistry()
        registry.inc("a_total", k="v")
        registry.observe("h", 3.0)
        samples = registry.as_dict()
        assert samples['a_total{k="v"}'] == 1.0
        assert samples["h_count"] == 1.0
        assert samples["h_sum"] == 3.0


class TestEventBus:
    def test_exact_topic_delivery(self):
        bus = EventBus()
        got = []
        bus.subscribe("fault.injected", got.append)
        bus.publish("fault.injected", fault="f1")
        bus.publish("other.topic")
        assert [e.payload for e in got] == [{"fault": "f1"}]

    def test_prefix_and_global_wildcards(self):
        bus = EventBus()
        prefix, everything = [], []
        bus.subscribe("checkpoint.*", prefix.append)
        bus.subscribe("*", everything.append)
        bus.publish("checkpoint.written")
        bus.publish("checkpoint.rollback")
        bus.publish("reboot")
        assert [e.topic for e in prefix] == ["checkpoint.written",
                                             "checkpoint.rollback"]
        assert len(everything) == 3

    def test_cancel_stops_delivery(self):
        bus = EventBus()
        got = []
        subscription = bus.subscribe("t", got.append)
        bus.publish("t")
        subscription.cancel()
        bus.publish("t")
        assert len(got) == 1
        assert subscription.delivered == 1

    def test_history_and_counts(self):
        bus = EventBus(history=2)
        for _ in range(3):
            bus.publish("a")
        bus.publish("b")
        assert bus.counts == {"a": 3, "b": 1}
        assert bus.published == 4
        assert len(bus.history) == 2

    def test_events_are_ordered_and_timestamped(self):
        ticks = iter([5.0, 7.0])
        bus = EventBus(now=lambda: next(ticks))
        first = bus.publish("x")
        second = bus.publish("y")
        assert (first.seq, second.seq) == (0, 1)
        assert (first.time, second.time) == (5.0, 7.0)


class TestTelemetryFacade:
    def test_default_session_is_disabled(self):
        assert observe.current().enabled is False
        assert observe.enabled() is False

    def test_session_installs_and_restores(self):
        before = observe.current()
        with observe.session() as tel:
            assert observe.current() is tel
            assert tel.enabled
        assert observe.current() is before

    def test_session_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with observe.session():
                raise RuntimeError("boom")
        assert observe.current().enabled is False

    def test_sessions_nest(self):
        with observe.session() as outer:
            with observe.session() as inner:
                assert observe.current() is inner
            assert observe.current() is outer

    def test_disabled_publish_and_count_are_noops(self):
        tel = Telemetry(enabled=False)
        tel.publish("topic", k=1)
        tel.count("c_total")
        assert tel.bus.published == 0
        assert len(tel.metrics) == 0

    def test_seq_clock_fallback_orders_spans(self):
        tel = Telemetry()
        with tel.span("a") as first:
            pass
        with tel.span("b") as second:
            pass
        assert first.start < first.end <= second.start

    def test_bind_clock_switches_time_source(self):
        class FixedClock:
            now = 42.0

        tel = Telemetry()
        tel.bind_clock(FixedClock())
        with tel.span("s") as span:
            pass
        assert span.start == 42.0 and span.end == 42.0

    def test_summary_digest(self):
        tel = Telemetry()
        with tel.span("unit.run") as span:
            span.attrs["cost"] = 2.0
        with pytest.raises(RuntimeError):
            with tel.span("unit.run"):
                raise RuntimeError("boom")
        tel.publish("unit.outcome", ok=True)
        tel.count("runs_total")
        digest = tel.summary()
        assert digest["spans"]["unit.run"] == {"count": 2, "cost": 2.0,
                                               "errors": 1}
        assert digest["events"] == {"unit.outcome": 1}
        assert digest["metrics"] == {"runs_total": 1.0}

    def test_seq_clock_ticks(self):
        clock = _SeqClock()
        assert clock.now < clock.now
