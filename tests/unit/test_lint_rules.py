"""Unit tests for the individual lint rule families."""

import textwrap

import pytest

from repro.lint import LintEngine


def findings(source, select=None):
    engine = LintEngine(select=select)
    return engine.lint_source(textwrap.dedent(source))


def rule_ids(source, select=None):
    return [f.rule for f in findings(source, select)]


class TestUnseededRandom:
    def test_module_level_random_call_is_flagged(self):
        src = """
            import random

            def roll():
                return random.random()
        """
        assert rule_ids(src) == ["DET001"]

    def test_aliased_import_is_tracked(self):
        src = """
            import random as rnd

            def mix(xs):
                rnd.shuffle(xs)
        """
        assert rule_ids(src) == ["DET001"]

    def test_from_import_is_tracked(self):
        src = """
            from random import choice

            def pick(xs):
                return choice(xs)
        """
        assert rule_ids(src) == ["DET001"]

    def test_seedless_random_instance_is_flagged(self):
        src = """
            import random

            def make_rng():
                return random.Random()
        """
        assert rule_ids(src) == ["DET001"]

    def test_seeded_instance_and_methods_are_clean(self):
        src = """
            import random

            def draw(seed):
                rng = random.Random(seed)
                return rng.random() + rng.randrange(10)
        """
        assert rule_ids(src) == []


class TestWallClock:
    def test_time_time_is_flagged(self):
        src = """
            import time

            def stamp():
                return time.time()
        """
        assert rule_ids(src) == ["DET002"]

    def test_datetime_now_is_flagged(self):
        src = """
            from datetime import datetime

            def today():
                return datetime.now()
        """
        assert rule_ids(src) == ["DET002"]

    def test_interval_clocks_are_clean(self):
        src = """
            import time

            def measure():
                start = time.perf_counter()
                return time.perf_counter() - start, time.process_time()
        """
        assert rule_ids(src) == []


class TestBuiltinHash:
    def test_hash_call_is_flagged(self):
        assert rule_ids("def f(name):\n    return hash(name) % 7\n") \
            == ["DET003"]

    def test_hashlib_is_clean(self):
        src = """
            import hashlib

            def f(name):
                return hashlib.sha1(name).hexdigest()
        """
        assert rule_ids(src) == []


class TestEnvIteration:
    def test_set_literal_iteration_is_flagged(self):
        assert rule_ids("for x in {1, 2, 3}:\n    print(x)\n") \
            == ["DET004"]

    def test_set_call_iteration_is_flagged(self):
        assert rule_ids("out = [x for x in set(range(3))]\n") \
            == ["DET004"]

    def test_os_environ_iteration_is_flagged(self):
        src = """
            import os

            def dump():
                return [key for key in os.environ]
        """
        assert rule_ids(src) == ["DET004"]

    def test_sorted_wrapping_is_clean(self):
        src = """
            import os

            def dump():
                for key in sorted(os.environ):
                    print(key)
                return [x for x in sorted({1, 2})]
        """
        assert rule_ids(src) == []


class TestTrialReseed:
    def test_seeded_random_in_trial_function_is_flagged(self):
        src = """
            import random

            def trial(seed):
                rng = random.Random(seed)
                return {"v": rng.random()}
        """
        assert rule_ids(src, select=["DET006"]) == ["DET006"]

    def test_random_seed_in_trial_function_is_flagged(self):
        src = """
            import random

            def run_trial(seed):
                random.seed(seed)
        """
        assert rule_ids(src, select=["DET006"]) == ["DET006"]

    def test_from_import_aliases_are_tracked(self):
        src = """
            from random import Random as R, seed as reseed

            def my_trial(s):
                reseed(s)
                return R(s)
        """
        assert rule_ids(src, select=["DET006"]) \
            == ["DET006", "DET006"]

    def test_non_trial_functions_are_out_of_scope(self):
        src = """
            import random

            def make_rng(seed):
                return random.Random(seed)
        """
        assert rule_ids(src, select=["DET006"]) == []

    def test_seedless_random_is_det001s_business(self):
        src = """
            import random

            def trial(seed):
                return random.Random()
        """
        assert rule_ids(src, select=["DET006"]) == []

    def test_escalates_to_error_in_batched_modules(self):
        src = """
            import random
            from repro.harness import run_trials

            def trial(seed):
                rng = random.Random(seed)
                return {"v": rng.random()}

            results = run_trials(trial, range(8), batch=4)
        """
        found = findings(src, select=["DET006"])
        assert [f.severity for f in found] == ["error"]

    def test_warning_without_batch_keyword(self):
        src = """
            import random

            def trial(seed):
                return {"v": random.Random(seed).random()}
        """
        found = findings(src, select=["DET006"])
        assert [f.severity for f in found] == ["warning"]

    def test_trial_stream_pattern_is_clean(self):
        src = """
            from repro.runtime.kernel import trial_stream

            def trial(seed):
                rng = trial_stream(seed, 0)
                return {"v": rng.random()}
        """
        assert rule_ids(src, select=["DET006"]) == []


class TestProcessSafety:
    def test_lambda_task_is_flagged(self):
        src = """
            from repro.runtime import parallel_map

            def run(xs):
                return parallel_map(lambda x: x + 1, xs)
        """
        assert rule_ids(src) == ["PROC001"]

    def test_lambda_bound_name_is_flagged(self):
        src = """
            from repro.runtime import ParallelMap

            def run(xs):
                double = lambda x: x * 2
                pool = ParallelMap(workers=4)
                return pool.map(double, xs)
        """
        assert rule_ids(src) == ["PROC001"]

    def test_explicit_process_backend_escalates_to_error(self):
        src = """
            from repro.runtime import ParallelMap

            def run(xs):
                return ParallelMap(backend="process").map(
                    lambda x: x, xs)
        """
        result = findings(src)
        assert [f.rule for f in result] == ["PROC001"]
        assert result[0].severity == "error"

    def test_nested_def_task_is_flagged(self):
        src = """
            from repro.runtime import parallel_map

            def run(xs, offset):
                def shifted(x):
                    return x + offset
                return parallel_map(shifted, xs)
        """
        assert rule_ids(src) == ["PROC002"]

    def test_module_level_def_is_clean(self):
        src = """
            from repro.runtime import ParallelMap

            def work(x):
                return x + 1

            def run(xs):
                pool = ParallelMap(workers=2)
                return pool.map(work, xs)
        """
        assert rule_ids(src) == []

    def test_task_touching_pool_api_is_flagged(self):
        src = """
            from repro.runtime import parallel_map
            from repro.runtime.pool import get_pool

            def work(x):
                return get_pool("thread", 2).acquire().submit(abs, x)

            def run(xs):
                return parallel_map(work, xs)
        """
        assert rule_ids(src) == ["PROC003"]

    def test_task_importing_pool_module_is_flagged(self):
        src = """
            from repro.runtime import parallel_map

            def work(x):
                import repro.runtime.pool
                return x

            def run(xs):
                return parallel_map(work, xs)
        """
        assert rule_ids(src) == ["PROC003"]

    def test_pool_task_on_process_backend_is_an_error(self):
        src = """
            from repro.runtime import ParallelMap
            from repro.runtime.pool import shutdown_pools

            def work(x):
                shutdown_pools()
                return x

            def run(xs):
                pool = ParallelMap(workers=2, backend="process")
                return pool.map(work, xs)
        """
        result = findings(src)
        assert [f.rule for f in result] == ["PROC003"]
        assert result[0].severity == "error"

    def test_parent_side_pool_use_is_clean(self):
        src = """
            from repro.runtime import ParallelMap
            from repro.runtime.pool import shutdown_pools

            def work(x):
                return x + 1

            def run(xs):
                pool = ParallelMap(workers=2)
                try:
                    return pool.map(work, xs)
                finally:
                    shutdown_pools()
        """
        assert rule_ids(src) == []

    def test_one_functions_nested_def_does_not_taint_another(self):
        src = """
            from repro.runtime import parallel_map

            def work(x):
                return x + 1

            def unrelated():
                def work():
                    return 0
                return work()

            def run(xs):
                return parallel_map(work, xs)
        """
        assert rule_ids(src) == []


class TestPatternMisuse:
    def test_even_literal_voting_set_is_flagged(self):
        src = """
            from repro import NVersionProgramming

            def build(a, b):
                return NVersionProgramming([a, b])
        """
        assert rule_ids(src) == ["PAT001"]

    def test_even_population_count_is_flagged(self):
        src = """
            from repro import NVersionProgramming, diverse_versions

            def build(oracle):
                return NVersionProgramming(
                    diverse_versions(oracle, 4, 0.1, seed=1))
        """
        assert rule_ids(src) == ["PAT001"]

    def test_odd_sets_and_unknown_sizes_are_clean(self):
        src = """
            from repro import NVersionProgramming

            def build(a, b, c, extras):
                NVersionProgramming([a, b, c])
                NVersionProgramming([a, *extras])
                return NVersionProgramming(extras)
        """
        assert rule_ids(src) == []

    def test_explicit_none_adjudicator_is_flagged(self):
        src = """
            from repro.patterns import ParallelEvaluation

            def build(units):
                return ParallelEvaluation(units, adjudicator=None)
        """
        assert rule_ids(src) == ["PAT002"]

    def test_sequential_without_subject_is_info(self):
        src = """
            from repro.patterns import SequentialAlternatives

            def build(units):
                return SequentialAlternatives(units)
        """
        result = findings(src)
        assert [f.rule for f in result] == ["PAT003"]
        assert result[0].severity == "info"

    def test_sequential_with_subject_is_clean(self):
        src = """
            from repro.patterns import SequentialAlternatives

            def build(units, state):
                return SequentialAlternatives(units, subject=state)
        """
        assert rule_ids(src) == []


BIG_BODY = """
def {name}({arg}):
    \"\"\"Accumulate a running checksum over the request payload.\"\"\"
    total = 0
    for index, item in enumerate({arg}):
        if item < 0:
            total -= index * item + 17
        elif item % 3 == 0:
            total += item * item - index
        else:
            total += item + index * 31
    if total < 0:
        total = -total + 255
    return total % 65521
"""


class TestNearClones:
    def test_renamed_clone_pair_is_flagged_with_score(self):
        src = (BIG_BODY.format(name="checksum_a", arg="payload")
               + BIG_BODY.format(name="checksum_b", arg="items"))
        result = findings(src, select=["DIV001"])
        assert len(result) == 1
        assert "similarity 1.00" in result[0].message
        assert "checksum_a" in result[0].message

    def test_distinct_functions_are_clean(self):
        other = """
def totally_different(text):
    \"\"\"Render a report header.\"\"\"
    lines = [text.upper(), "=" * len(text)]
    for suffix in ("a", "b", "c"):
        lines.append(text + suffix + "!")
    while len(lines) < 9:
        lines.append("padding: " + str(len(lines)))
    return "\\n".join(lines)
"""
        src = BIG_BODY.format(name="checksum", arg="payload") + other
        assert rule_ids(src, select=["DIV001"]) == []

    def test_tiny_twins_are_skipped(self):
        src = """
def get_a(self):
    return self.a

def get_b(self):
    return self.a
"""
        assert rule_ids(src, select=["DIV001"]) == []


class TestPragmas:
    def test_bare_allow_suppresses_any_rule(self):
        assert rule_ids(
            "def f(n):\n    return hash(n)  # lint: allow\n") == []

    def test_scoped_allow_suppresses_named_rule(self):
        assert rule_ids(
            "def f(n):\n"
            "    return hash(n)  # lint: allow[DET003]\n") == []

    def test_scoped_allow_for_other_rule_does_not_suppress(self):
        assert rule_ids(
            "def f(n):\n"
            "    return hash(n)  # lint: allow[DET001]\n") == ["DET003"]


class TestRegistry:
    def test_select_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            LintEngine(select=["NOPE999"])

    def test_all_rule_ids_are_unique_and_familied(self):
        from repro.lint import default_rules

        registry = default_rules()
        ids = registry.ids()
        assert len(ids) == len(set(ids)) >= 10
        families = {rid.rstrip("0123456789") for rid in ids}
        assert families == {"DET", "PROC", "PAT", "DIV", "XDET", "XPROC"}
