"""Unit tests for repro.result."""

import pytest

from repro.exceptions import SimulatedFailure
from repro.result import Outcome, run_to_outcome


class TestOutcome:
    def test_success_has_no_error(self):
        out = Outcome.success(7, producer="v1", cost=2.0)
        assert out.ok
        assert not out.failed
        assert out.value == 7
        assert out.producer == "v1"
        assert out.cost == 2.0

    def test_failure_carries_exception(self):
        exc = SimulatedFailure("boom")
        out = Outcome.failure(exc, producer="v2")
        assert out.failed
        assert not out.ok
        assert out.error is exc

    def test_unwrap_returns_value(self):
        assert Outcome.success([1, 2]).unwrap() == [1, 2]

    def test_unwrap_reraises(self):
        exc = SimulatedFailure("boom")
        with pytest.raises(SimulatedFailure):
            Outcome.failure(exc).unwrap()

    def test_meta_kwargs_captured(self):
        out = Outcome.success(1, args=(3,), expressed=(4,))
        assert out.meta["args"] == (3,)
        assert out.meta["expressed"] == (4,)

    def test_outcome_is_frozen(self):
        out = Outcome.success(1)
        with pytest.raises(Exception):
            out.value = 2

    def test_default_attempt_is_zero(self):
        assert Outcome.success(1).attempt == 0

    def test_attempt_recorded(self):
        assert Outcome.success(1, attempt=3).attempt == 3


class TestRunToOutcome:
    def test_captures_value(self):
        out = run_to_outcome(lambda a, b: a + b, 2, 3, producer="f")
        assert out.ok and out.value == 5 and out.producer == "f"

    def test_captures_expected_exception(self):
        def boom():
            raise SimulatedFailure("x")
        out = run_to_outcome(boom, expected=SimulatedFailure)
        assert out.failed
        assert isinstance(out.error, SimulatedFailure)

    def test_unexpected_exception_propagates(self):
        def boom():
            raise KeyError("x")
        with pytest.raises(KeyError):
            run_to_outcome(boom, expected=SimulatedFailure)

    def test_kwargs_forwarded(self):
        out = run_to_outcome(lambda a, b=0: a - b, 10, b=4)
        assert out.value == 6
