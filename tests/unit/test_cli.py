"""Unit tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENT_INDEX, build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["--version"])
        assert info.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestTables:
    def test_renders_both_tables_and_verdict(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" in out
        assert "matches the paper's Table 2 exactly" in out


class TestTechniques:
    def test_lists_all_seventeen(self, capsys):
        assert main(["techniques"]) == 0
        out = capsys.readouterr().out
        assert "N-version programming" in out
        assert "Reboot and micro-reboot" in out
        assert out.count("intention:") == 17


class TestExperiments:
    def test_lists_all_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for eid, _, bench in EXPERIMENT_INDEX:
            assert bench in out
        assert len(EXPERIMENT_INDEX) == 31

    def test_index_ids_are_unique(self):
        ids = [eid for eid, _, _ in EXPERIMENT_INDEX]
        assert len(set(ids)) == len(ids)


class TestRecommend:
    def test_heisenbug_low_budget(self, capsys):
        assert main(["recommend", "heisenbug", "--budget", "low"]) == 0
        out = capsys.readouterr().out
        assert "1." in out
        # Opportunistic environment techniques lead under a low budget.
        first_line = [l for l in out.splitlines() if l.startswith("1.")][0]
        assert "opportunistic" in first_line

    def test_malicious(self, capsys):
        assert main(["recommend", "malicious"]) == 0
        out = capsys.readouterr().out
        assert "Process replicas" in out

    def test_invalid_fault_rejected(self):
        with pytest.raises(SystemExit):
            main(["recommend", "gremlins"])

    def test_top_limits_output(self, capsys):
        main(["recommend", "development", "--top", "2"])
        out = capsys.readouterr().out
        assert "3." not in out


class TestLintCommand:
    def test_help_smoke(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["lint", "--help"])
        assert info.value.code == 0
        out = capsys.readouterr().out
        for flag in ("--format", "--fail-on", "--baseline",
                     "--write-baseline", "--select",
                     "--diversity-threshold"):
            assert flag in out

    def test_requires_paths(self):
        with pytest.raises(SystemExit):
            main(["lint"])


class TestDemo:
    def test_demo_reports_reliability(self, capsys):
        assert main(["demo", "--versions", "3",
                     "--failure-rate", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "3-version programming" in out
        assert "voted system reliability" in out

    def test_demo_is_seeded(self, capsys):
        main(["demo", "--seed", "42"])
        first = capsys.readouterr().out
        main(["demo", "--seed", "42"])
        second = capsys.readouterr().out
        assert first == second


class TestCampaignCommand:
    def test_matrix_rendered(self, capsys):
        assert main(["campaign", "--requests", "30"]) == 0
        out = capsys.readouterr().out
        assert "N-version (3)" in out
        assert "unprotected" in out
        assert "Bohrbug" in out

    def test_deterministic_given_seed(self, capsys):
        main(["campaign", "--requests", "30", "--seed", "5"])
        first = capsys.readouterr().out
        main(["campaign", "--requests", "30", "--seed", "5"])
        assert capsys.readouterr().out == first

    def test_workers_match_serial(self, capsys):
        main(["campaign", "--requests", "30", "--seed", "5"])
        serial = capsys.readouterr().out
        main(["campaign", "--requests", "30", "--seed", "5",
              "--workers", "3"])
        assert capsys.readouterr().out == serial

    def test_campaign_json_format(self, capsys):
        import json

        assert main(["campaign", "--requests", "20", "--seed", "5",
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-campaign-report/v1"
        assert doc["sli"]["schema"] == "repro-sli-report/v2"
        assert {"protector", "fault", "survival_rate"} <= \
            doc["cells"][0].keys()


class TestShardedCampaignCLI:
    def _json_run(self, capsys, extra):
        code = main(["campaign", "--requests", "20", "--seed", "5",
                     "--format", "json"] + extra)
        return code, capsys.readouterr()

    def test_interrupt_then_resume_matches_cold(self, tmp_path, capsys):
        store = str(tmp_path / "ck.jsonl")
        code, interrupted = self._json_run(
            capsys, ["--shards", "4", "--store", store,
                     "--max-shards", "2"])
        assert code == 0
        assert "shards:" in interrupted.err
        # A truncated run has no complete grid, so no report.
        assert interrupted.out.strip() == ""
        code, resumed = self._json_run(
            capsys, ["--shards", "4", "--store", store, "--resume"])
        assert code == 0
        assert "served=2" in resumed.err
        code, cold = self._json_run(capsys, ["--shards", "4"])
        assert code == 0
        assert resumed.out == cold.out

    def test_resume_requires_a_store(self):
        with pytest.raises(SystemExit):
            main(["campaign", "--requests", "20", "--shards", "2",
                  "--resume"])

    def test_gate_attaches_verdict_and_accepts(self, capsys):
        import json

        code, run = self._json_run(capsys, ["--gate"])
        assert code == 0
        verdict = json.loads(run.out)["verdict"]
        assert verdict["schema"] == "repro-campaign-verdict/v1"
        assert verdict["is_accepted"] is True
        assert "tests" in verdict["gates_passed"]

    def test_gate_renders_verdict_in_text(self, capsys):
        assert main(["campaign", "--requests", "20", "--seed", "5",
                     "--gate"]) == 0
        out = capsys.readouterr().out
        assert "campaign verdict" in out
        assert "ACCEPTED" in out

    def test_gate_rejects_on_baseline_drift(self, tmp_path, capsys):
        import json

        _, run = self._json_run(capsys, [])
        baseline = json.loads(run.out)
        baseline["sli"]["techniques"][0]["outcomes_seen"] += 7
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(baseline), encoding="utf-8")
        code, rejected = self._json_run(
            capsys, ["--gate", "--gate-baseline", str(path)])
        assert code == 3
        verdict = json.loads(rejected.out)["verdict"]
        assert "telemetry-drift" in verdict["gates_failed"]


class TestLiveDashboardCommands:
    LIVE = ["--interval", "0.05", "--frames", "2", "--format", "json"]

    def _frames(self, out):
        import json

        from repro.observe.stream import validate_frame

        frames = [json.loads(line) for line in out.strip().splitlines()]
        for frame in frames:
            validate_frame(frame)
        return frames

    def test_top_emits_valid_frames_floor(self, capsys):
        assert main(["top", "--requests", "8", "--seed", "3",
                     "--workers", "2", *self.LIVE]) == 0
        frames = self._frames(capsys.readouterr().out)
        # --frames is a floor, not a cap.
        assert len(frames) >= 2
        assert [f["seq"] for f in frames] == list(range(len(frames)))
        assert all(not f["final"] for f in frames[:-1])
        final = frames[-1]
        assert final["final"] is True
        assert final["cells"]["done"] == final["cells"]["total"]
        assert final["report"]["schema"] == "repro-campaign-report/v1"

    def test_live_final_report_matches_plain_campaign_json(self, capsys):
        import json

        base = ["--requests", "10", "--seed", "3", "--workers", "2"]
        assert main(["campaign", *base, "--format", "json"]) == 0
        plain = capsys.readouterr().out
        assert main(["campaign", *base, "--live", *self.LIVE]) == 0
        final = self._frames(capsys.readouterr().out)[-1]
        # The streamed run's canonical report is byte-identical to the
        # non-streaming path's output.
        assert json.dumps(final["report"], sort_keys=True, indent=2,
                          default=str) + "\n" == plain

    def test_flight_out_writes_validating_jsonl(self, tmp_path, capsys):
        from repro.observe.export.jsonl import validate_event_log

        path = tmp_path / "flight.jsonl"
        assert main(["top", "--requests", "8", "--seed", "3",
                     "--workers", "2", *self.LIVE,
                     "--flight-out", str(path)]) == 0
        header = validate_event_log(path.read_text())
        assert header["source"] == "flight-recorder"

    def test_top_leaves_no_session_installed(self, capsys):
        from repro import observe

        main(["top", "--requests", "4", "--seed", "3", *self.LIVE])
        assert observe.current().enabled is False


class TestTraceCommand:
    def test_trace_prints_timeline(self, capsys):
        assert main(["trace", "nvp", "--requests", "4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "scenario nvp" in out
        assert "pattern.execute" in out
        assert "unit.run" in out
        assert "adjudicate" in out

    def test_trace_limit_elides(self, capsys):
        main(["trace", "nvp", "--requests", "10", "--limit", "5"])
        assert "more spans" in capsys.readouterr().out

    def test_trace_exports_jsonl(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.jsonl"
        main(["trace", "recovery-blocks", "--requests", "4",
              "--jsonl", str(path)])
        rows = [json.loads(line)
                for line in path.read_text().splitlines()]
        assert rows and {"name", "span_id", "attrs"} <= rows[0].keys()

    def test_trace_is_seeded(self, capsys):
        main(["trace", "microreboot", "--requests", "20", "--seed", "9"])
        first = capsys.readouterr().out
        main(["trace", "microreboot", "--requests", "20", "--seed", "9"])
        assert capsys.readouterr().out == first

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "nope"])

    def test_trace_leaves_no_session_installed(self):
        from repro import observe

        main(["trace", "nvp", "--requests", "2"])
        assert observe.current().enabled is False


class TestMetricsCommand:
    def test_metrics_prometheus_output(self, capsys):
        assert main(["metrics", "nvp", "--requests", "6"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_pattern_executions_total counter" in out
        assert 'repro_pattern_executions_total{pattern="nvp"} 18' in out

    def test_metrics_cover_recovery_counters(self, capsys):
        main(["metrics", "microreboot", "--requests", "40", "--seed", "2"])
        out = capsys.readouterr().out
        assert "repro_reboots_total" in out
        assert "repro_reboot_downtime_bucket" in out

    def test_metrics_json_format(self, capsys):
        import json

        assert main(["metrics", "nvp", "--requests", "6",
                     "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data['repro_pattern_executions_total{pattern="nvp"}'] == 18

    def test_metrics_openmetrics_format(self, capsys):
        assert main(["metrics", "microreboot", "--requests", "40",
                     "--seed", "2", "--format", "openmetrics"]) == 0
        out = capsys.readouterr().out
        assert out.rstrip().endswith("# EOF")
        assert "# TYPE repro_reboots counter" in out
        assert 'quantile="0.95"' in out


class TestTraceOutExport:
    def test_trace_out_writes_valid_chrome_trace(self, tmp_path, capsys):
        import json

        from repro.observe.export import validate_chrome_trace

        path = tmp_path / "trace.json"
        assert main(["trace", "nvp", "--requests", "4",
                     "--out", str(path)]) == 0
        doc = json.loads(path.read_text())
        validate_chrome_trace(doc)
        assert doc["traceEvents"]
        assert "Chrome trace written" in capsys.readouterr().out

    def test_trace_out_unwritable_path_fails(self, tmp_path, capsys):
        missing = tmp_path / "no-such-dir" / "trace.json"
        assert main(["trace", "nvp", "--requests", "2",
                     "--out", str(missing)]) == 1
        assert "error" in capsys.readouterr().err


class TestReportCommand:
    def test_report_renders_sli_table(self, capsys):
        assert main(["report", "microreboot", "--requests", "40",
                     "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "per-technique SLIs" in out
        assert "avail" in out and "rec p50" in out
        assert "micro" in out

    def test_report_availability_and_percentiles_from_campaign(self,
                                                               capsys):
        assert main(["report", "all", "--requests", "30",
                     "--seed", "7"]) == 0
        out = capsys.readouterr().out
        # availability from unit outcomes...
        assert "nvp" in out
        # ...and recovery latency percentiles from recovery events.
        assert "micro" in out

    def test_report_json_format(self, capsys):
        import json

        assert main(["report", "nvp", "--requests", "10",
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["sli"]["schema"] == "repro-sli-report/v2"
        rows = {row["technique"]: row for row in doc["sli"]["techniques"]}
        assert rows["nvp"]["availability"] is not None
        assert rows["nvp"]["throughput"] is not None
        # JSON documents carry no wall clock: the bytes are a pure
        # function of (scenario, requests, seed) at any worker count.
        assert doc["sli"]["trials_per_sec"] is None
        assert doc["sli"]["wall_span"] is None
        assert doc["scenarios"][0]["scenario"] == "nvp"

    def test_report_window_flag(self, capsys):
        assert main(["report", "nvp", "--requests", "10",
                     "--window", "4"]) == 0
        assert "window=4" in capsys.readouterr().out

    def test_report_exports_artifacts(self, tmp_path, capsys):
        import json

        from repro.observe.export import validate_chrome_trace

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.om.txt"
        assert main(["report", "checkpoint", "--requests", "10",
                     "--trace-out", str(trace_path),
                     "--metrics-out", str(metrics_path)]) == 0
        validate_chrome_trace(json.loads(trace_path.read_text()))
        assert metrics_path.read_text().rstrip().endswith("# EOF")

    def test_report_workers_match_serial(self, capsys):
        assert main(["report", "all", "--requests", "20", "--seed", "5",
                     "--format", "json"]) == 0
        serial = capsys.readouterr().out
        assert main(["report", "all", "--requests", "20", "--seed", "5",
                     "--format", "json", "--workers", "2",
                     "--backend", "process"]) == 0
        assert capsys.readouterr().out == serial

    def test_report_leaves_no_session_installed(self):
        from repro import observe

        main(["report", "nvp", "--requests", "2"])
        assert observe.current().enabled is False
