"""Telemetry integration: instrumented engines, monitors, invariance.

The acceptance bar for the observe subsystem:

* span cost totals must equal :class:`PatternStats` counters *exactly*
  (bit-identical floats, not approximately);
* monitors subscribe to the bus instead of being hand-wired;
* with no session installed, a seeded run is indistinguishable from an
  uninstrumented build.
"""

import json

from repro import observe
from repro.adjudicators import PredicateAcceptanceTest
from repro.adjudicators.monitors import (
    ExceptionDetector,
    LatencyMonitor,
    QoSMonitor,
)
from repro.components.library import diverse_versions
from repro.environment import SimEnvironment
from repro.exceptions import RedundancyError
from repro.techniques.nvp import NVersionProgramming
from repro.techniques.recovery_blocks import RecoveryBlocks


def _oracle(x):
    return x * 3


def _run_c3_style(requests=60, seed=11, env=None):
    """A miniature C3 workload (NVP + recovery blocks, faulty versions)."""
    nvp = NVersionProgramming(diverse_versions(_oracle, 3, 0.1, seed=seed))
    rb = RecoveryBlocks(
        diverse_versions(_oracle, 3, 0.1, seed=seed + 1),
        PredicateAcceptanceTest(lambda args, v: v == _oracle(args[0])))
    correct = 0
    for x in range(requests):
        for technique in (nvp, rb):
            try:
                correct += technique.execute(x, env=env) == _oracle(x)
            except RedundancyError:
                pass
    return nvp, rb, correct


class TestCostConsistency:
    def test_span_costs_match_pattern_stats_exactly(self):
        env = SimEnvironment(seed=3)
        with observe.session(clock=env.clock) as tel:
            nvp, rb, _ = _run_c3_style(env=env)
        for technique in (nvp, rb):
            stats = technique.stats
            name = stats.owner
            assert tel.tracer.total_cost(
                "unit.run", pattern=name) == stats.execution_cost
            assert tel.tracer.total_cost(
                "adjudicate", pattern=name) == stats.adjudication_cost
            assert len(tel.tracer.find(
                "unit.run", pattern=name)) == stats.executions
            assert len(tel.tracer.find(
                "adjudicate", pattern=name)) == stats.adjudications

    def test_jsonl_export_parses_and_nests(self):
        env = SimEnvironment(seed=3)
        with observe.session(clock=env.clock) as tel:
            _run_c3_style(requests=10, env=env)
        rows = [json.loads(line)
                for line in tel.tracer.export_jsonl().splitlines()]
        assert rows
        ids = {r["span_id"] for r in rows}
        roots = [r for r in rows if r["parent_id"] is None]
        assert roots and all(r["name"] == "technique.execute" for r in roots)
        assert all(r["parent_id"] in ids for r in rows
                   if r["parent_id"] is not None)

    def test_stats_feed_metrics_registry(self):
        env = SimEnvironment(seed=3)
        with observe.session(clock=env.clock) as tel:
            nvp, _, _ = _run_c3_style(requests=20, env=env)
        assert tel.metrics.value(
            "repro_pattern_executions_total",
            pattern=nvp.stats.owner) == nvp.stats.executions
        assert tel.metrics.value(
            "repro_pattern_execution_cost_total",
            pattern=nvp.stats.owner) == nvp.stats.execution_cost


class TestNoOpInvariance:
    def test_disabled_run_identical_to_instrumented_metrics(self):
        def run():
            env = SimEnvironment(seed=5)
            nvp, rb, correct = _run_c3_style(seed=7, env=env)
            return (correct, nvp.stats.as_dict(), rb.stats.as_dict(),
                    env.clock.now)

        baseline = run()
        with observe.session():
            instrumented = run()
        assert observe.current().enabled is False
        assert baseline == run()
        assert instrumented == baseline

    def test_disabled_session_records_nothing(self):
        env = SimEnvironment(seed=5)
        _run_c3_style(requests=5, env=env)
        tel = observe.current()
        assert not tel.tracer.spans
        assert tel.bus.published == 0
        assert len(tel.metrics) == 0


class TestMonitorSubscriptions:
    def test_exception_detector_counts_bus_failures(self):
        from repro.components.version import Version
        from repro.exceptions import HeisenbugFailure

        def crash(x):
            raise HeisenbugFailure("transient")

        env = SimEnvironment(seed=13)
        nvp = NVersionProgramming(
            [Version("crashy", impl=crash),
             *diverse_versions(_oracle, 2, 0.0, seed=13)])
        detector = ExceptionDetector()
        with observe.session(clock=env.clock) as tel:
            detector.subscribe(tel.bus)
            for x in range(10):
                nvp.execute(x, env=env)
            failures = sum(
                1 for event in tel.bus.history
                if event.topic == "unit.outcome"
                and not event.payload["ok"])
        assert failures == 10
        assert detector.detections == failures

    def test_latency_monitor_feeds_from_unit_costs(self):
        monitor = LatencyMonitor(threshold=0.5, window=4)
        with observe.session() as tel:
            monitor.subscribe(tel.bus)
            for _ in range(4):
                tel.publish("unit.outcome", ok=True, cost=1.0)
        assert monitor.average == 1.0
        assert monitor.degraded

    def test_qos_monitor_tracks_error_rate(self):
        monitor = QoSMonitor(latency_threshold=100.0,
                             error_rate_threshold=0.25, window=4)
        with observe.session() as tel:
            subscription = monitor.subscribe(tel.bus)
            for ok in (True, False, False, True):
                tel.publish("unit.outcome", ok=ok, cost=1.0)
        assert monitor.error_rate == 0.5
        assert monitor.violated
        assert subscription.delivered == 4
