"""Unit tests for self-optimizing code and exception handling/rule engines."""

import pytest

from repro.adjudicators.monitors import QoSMonitor
from repro.environment import SimEnvironment
from repro.exceptions import (
    AllAlternativesFailedError,
    HeisenbugFailure,
    ServiceFailure,
    SimulatedFailure,
)
from repro.taxonomy.paper import paper_entry
from repro.techniques.rule_engine import (
    RecoveryRegistry,
    RecoveryRule,
    RuleEngine,
    retry_action,
    substitute_value_action,
)
from repro.techniques.self_optimizing import (
    AdaptiveImplementation,
    SelfOptimizing,
)


def cache_impl():
    """Fast when load is low, collapses under load."""
    return AdaptiveImplementation(
        name="cache", impl=lambda x: x,
        latency=lambda load: 1.0 if load < 0.5 else 20.0)


def db_impl():
    """Flat latency regardless of load."""
    return AdaptiveImplementation(
        name="db", impl=lambda x: x, latency=lambda load: 5.0)


class TestSelfOptimizing:
    def test_taxonomy_matches_paper(self):
        assert SelfOptimizing.TAXONOMY.matches(
            paper_entry("Self-optimizing code"))

    def test_stays_on_fast_impl_at_low_load(self):
        monitor = QoSMonitor(latency_threshold=8.0, window=3)
        opt = SelfOptimizing([cache_impl(), db_impl()], monitor, settle=1)
        for _ in range(10):
            opt.handle(1, load=0.1)
        assert opt.current.name == "cache"
        assert opt.switches == []

    def test_switches_under_load(self):
        monitor = QoSMonitor(latency_threshold=8.0, window=3)
        opt = SelfOptimizing([cache_impl(), db_impl()], monitor, settle=1)
        for _ in range(6):
            opt.handle(1, load=0.9)
        assert opt.current.name == "db"
        assert "db" in opt.switches

    def test_switch_picks_best_for_observed_load(self):
        monitor = QoSMonitor(latency_threshold=2.0, window=2)
        flat3 = AdaptiveImplementation("flat3", lambda x: x, lambda load: 3.0)
        opt = SelfOptimizing([cache_impl(), flat3, db_impl()], monitor,
                             settle=1)
        for _ in range(5):
            opt.handle(1, load=0.9)
        assert opt.current.name == "flat3"

    def test_latency_billed_to_env(self):
        env = SimEnvironment()
        monitor = QoSMonitor(latency_threshold=100, window=5)
        opt = SelfOptimizing([db_impl()], monitor)
        opt.handle(1, load=0.0, env=env)
        assert env.clock.now == 5.0

    def test_settle_prevents_thrashing(self):
        monitor = QoSMonitor(latency_threshold=0.5, window=1)
        opt = SelfOptimizing([cache_impl(), db_impl()], monitor, settle=100)
        for _ in range(10):
            opt.handle(1, load=0.9)
        assert opt.switches == []  # settle window never reached

    def test_validation(self):
        monitor = QoSMonitor(latency_threshold=1.0)
        with pytest.raises(ValueError):
            SelfOptimizing([], monitor)
        with pytest.raises(ValueError):
            SelfOptimizing([db_impl()], monitor, settle=-1)


class TestRecoveryRegistry:
    def test_rules_sorted_by_priority(self):
        registry = RecoveryRegistry()
        registry.add(RecoveryRule("late", (SimulatedFailure,),
                                  lambda a, e, x: 1, priority=200))
        registry.add(RecoveryRule("early", (SimulatedFailure,),
                                  lambda a, e, x: 2, priority=10))
        rules = registry.rules_for(SimulatedFailure("x"))
        assert [r.name for r in rules] == ["early", "late"]

    def test_matching_by_exception_type(self):
        registry = RecoveryRegistry()
        registry.add(RecoveryRule("svc-only", (ServiceFailure,),
                                  lambda a, e, x: 1))
        assert registry.rules_for(ServiceFailure("x"))
        assert not registry.rules_for(HeisenbugFailure("x"))

    def test_decorator_registration(self):
        registry = RecoveryRegistry()

        @registry.register("r", [SimulatedFailure], priority=5)
        def handle(args, env, exc):
            return "handled"

        assert len(registry) == 1
        assert registry.rules_for(SimulatedFailure("x"))[0].name == "r"


class TestRuleEngine:
    def test_taxonomy_matches_paper(self):
        assert RuleEngine.TAXONOMY.matches(
            paper_entry("Exception handling, rule engines"))

    def test_healthy_operation_untouched(self):
        engine = RuleEngine(lambda x, env=None: x * 2, RecoveryRegistry())
        assert engine.execute(4) == 8
        assert engine.failures_seen == 0

    def test_rule_recovers_failure(self):
        registry = RecoveryRegistry()
        registry.add(RecoveryRule("default", (SimulatedFailure,),
                                  substitute_value_action(-1)))

        def flaky(x, env=None):
            raise ServiceFailure("down")

        engine = RuleEngine(flaky, registry)
        assert engine.execute(4) == -1
        assert engine.recoveries == 1

    def test_rules_cascade_until_one_helps(self):
        registry = RecoveryRegistry()

        def unhelpful(args, env, exc):
            raise ServiceFailure("still down")

        registry.add(RecoveryRule("first", (SimulatedFailure,), unhelpful,
                                  priority=1))
        registry.add(RecoveryRule("second", (SimulatedFailure,),
                                  substitute_value_action("fallback"),
                                  priority=2))

        def flaky(x, env=None):
            raise ServiceFailure("down")

        engine = RuleEngine(flaky, registry)
        assert engine.execute(4) == "fallback"

    def test_no_matching_rule_raises(self):
        def flaky(x, env=None):
            raise ServiceFailure("down")

        engine = RuleEngine(flaky, RecoveryRegistry())
        with pytest.raises(AllAlternativesFailedError):
            engine.execute(4)

    def test_undetected_exception_propagates(self):
        def broken(x, env=None):
            raise KeyError("not a simulated failure")

        engine = RuleEngine(broken, RecoveryRegistry())
        with pytest.raises(KeyError):
            engine.execute(4)

    def test_retry_action_eventually_succeeds(self):
        env = SimEnvironment(seed=1)
        attempts = {"n": 0}

        def flaky(x, env=None):
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise ServiceFailure("transient")
            return x

        registry = RecoveryRegistry()
        registry.add(RecoveryRule("retry", (ServiceFailure,),
                                  retry_action(flaky, attempts=5)))
        engine = RuleEngine(flaky, registry)
        assert engine.execute(9) == 9

    def test_retry_action_exhausts(self):
        def dead(x, env=None):
            raise ServiceFailure("permanently down")

        registry = RecoveryRegistry()
        registry.add(RecoveryRule("retry", (ServiceFailure,),
                                  retry_action(dead, attempts=2)))
        engine = RuleEngine(dead, registry)
        with pytest.raises(AllAlternativesFailedError):
            engine.execute(1)

    def test_retry_action_validation(self):
        with pytest.raises(ValueError):
            retry_action(lambda: None, attempts=0)
