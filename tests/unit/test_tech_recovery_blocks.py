"""Unit tests for recovery blocks."""

import pytest

from repro.adjudicators.acceptance import PredicateAcceptanceTest
from repro.components.state import DictState
from repro.components.version import Version
from repro.environment import SimEnvironment
from repro.exceptions import AllAlternativesFailedError, BohrbugFailure
from repro.faults.base import WRONG_VALUE
from repro.faults.development import Bohrbug, InputRegion
from repro.taxonomy.paper import paper_entry
from repro.techniques.recovery_blocks import (
    ACCEPTANCE_TEST_DESIGN_COST,
    RecoveryBlocks,
)


def oracle(x):
    return x + 100


def acceptance():
    return PredicateAcceptanceTest(lambda args, v: v == args[0] + 100,
                                   name="plus-100")


def primary_failing_below(limit, effect="crash"):
    from repro.faults.base import CRASH
    return Version("primary", impl=oracle,
                   faults=[Bohrbug("p-bug", region=InputRegion(0, limit),
                                   effect=CRASH if effect == "crash"
                                   else WRONG_VALUE)])


class TestRecoveryBlocks:
    def test_taxonomy_matches_paper(self):
        assert RecoveryBlocks.TAXONOMY.matches(paper_entry("Recovery blocks"))

    def test_primary_path_runs_one_block(self):
        rb = RecoveryBlocks([Version("p", impl=oracle),
                             Version("alt", impl=oracle)], acceptance())
        assert rb.execute(5) == 105
        assert rb.stats.executions == 1

    def test_alternate_masks_primary_crash(self):
        rb = RecoveryBlocks([primary_failing_below(10 ** 9),
                             Version("alt", impl=oracle)], acceptance())
        assert rb.execute(5) == 105
        assert rb.stats.masked_failures == 1

    def test_acceptance_test_catches_wrong_value(self):
        rb = RecoveryBlocks([primary_failing_below(10 ** 9,
                                                   effect="wrong"),
                             Version("alt", impl=oracle)], acceptance())
        assert rb.execute(5) == 105

    def test_cascading_alternates(self):
        rb = RecoveryBlocks([primary_failing_below(10 ** 9),
                             primary_failing_below(10 ** 9),
                             Version("alt", impl=oracle)], acceptance())
        assert rb.execute(5) == 105
        assert rb.stats.executions == 3

    def test_exhaustion_raises(self):
        rb = RecoveryBlocks([primary_failing_below(10 ** 9)], acceptance())
        with pytest.raises(AllAlternativesFailedError):
            rb.execute(5)

    def test_needs_a_primary(self):
        with pytest.raises(ValueError):
            RecoveryBlocks([], acceptance())

    def test_rollback_restores_state_before_alternate(self):
        state = DictState(ledger=[])

        def corrupting_primary(x):
            state["ledger"].append("partial-write")
            raise BohrbugFailure("crash after side effect")

        def alternate(x):
            assert state["ledger"] == [], "alternate saw dirty state"
            state["ledger"].append("committed")
            return x + 100

        rb = RecoveryBlocks(
            [Version("p", impl=corrupting_primary),
             Version("alt", impl=alternate)],
            acceptance(), subject=state)
        assert rb.execute(1) == 101
        assert state["ledger"] == ["committed"]
        assert rb.stats.rollbacks == 1

    def test_sequential_cost_grows_only_on_failure(self):
        env_ok = SimEnvironment()
        rb_ok = RecoveryBlocks([Version("p", impl=oracle, exec_cost=2.0),
                                Version("alt", impl=oracle, exec_cost=2.0)],
                               acceptance())
        rb_ok.execute(1, env=env_ok)
        assert env_ok.clock.now == 2.0

        env_fail = SimEnvironment()
        rb_fail = RecoveryBlocks([primary_failing_below(10 ** 9),
                                  Version("alt", impl=oracle,
                                          exec_cost=2.0)], acceptance())
        rb_fail.execute(1, env=env_fail)
        assert env_fail.clock.now == 3.0  # 1.0 primary + 2.0 alternate

    def test_cost_ledger_charges_explicit_adjudicator(self):
        rb = RecoveryBlocks([Version("p", impl=oracle)], acceptance())
        rb.execute(1)
        ledger = rb.cost_ledger(correct=1)
        assert ledger.adjudicator_design_cost == ACCEPTANCE_TEST_DESIGN_COST

    def test_input_dependent_failure_only_fails_in_region(self):
        rb = RecoveryBlocks([primary_failing_below(100)], acceptance())
        assert rb.execute(500) == 600
        with pytest.raises(AllAlternativesFailedError):
            rb.execute(50)
