"""Edge-case tests across substrates: execution fuel, approximate data
diversity, weighted substitution corner cases, stats merging."""

import pytest

from repro.adjudicators.voting import MedianVoter
from repro.components.version import Version
from repro.environment.process import (
    AddressSpace,
    Instruction,
    Program,
    SimulatedProcess,
)
from repro.exceptions import MemoryViolation
from repro.patterns.base import PatternStats
from repro.techniques.data_diversity import DataDiversity, Reexpression


class TestProcessFuel:
    def test_self_referential_code_exhausts_fuel(self):
        """Injected code that calls back through the same pointer must be
        stopped by the fuel bound, not hang the monitor."""
        process = SimulatedProcess("p", AddressSpace(0, 1000), tag="t")
        # Code at 200 jumps through slot 300, which points back at 200.
        loop_code = (Instruction("call_indirect", (300,), "t"),)
        process.poke(200, loop_code)
        process.poke(300, 200)
        program = Program.build("spin", [("call_indirect", 300), ("ret",)],
                                tag="t")
        with pytest.raises(MemoryViolation):
            process.execute(program, ())

    def test_fuel_resets_between_executions(self):
        process = SimulatedProcess("p", AddressSpace(0, 1000), tag="t")
        program = Program.build("ok", [("const", 1), ("ret",)], tag="t")
        for _ in range(3):
            assert process.execute(program, ()) == 1


class TestApproximateDataDiversity:
    def test_approximate_reexpressions_with_median_vote(self):
        """Ammann & Knight's *approximate* re-expressions: outputs differ
        within an envelope, so the N-copy adjudicator must be inexact —
        the median absorbs the spread."""
        program = Version("smooth", impl=lambda x: float(x))
        nudges = [Reexpression(name=f"+{d}",
                               transform=lambda args, d=d: (args[0] + d,),
                               exact=False)
                  for d in (0.001, -0.001, 0.002)]
        dd = DataDiversity(program, nudges, voter=MedianVoter())
        value = dd.execute_ncopy(10.0)
        assert value == pytest.approx(10.0, abs=0.01)

    def test_reexpression_exactness_flag(self):
        exact = Reexpression.identity()
        assert exact.exact
        approx = Reexpression(name="a", transform=lambda a: a, exact=False)
        assert not approx.exact


class TestPatternStatsMerge:
    def test_merge_adds_every_field(self):
        a = PatternStats(invocations=1, executions=2, execution_cost=3.0,
                         adjudications=4, adjudication_cost=5.0,
                         masked_failures=6, unmasked_failures=7,
                         rollbacks=8, disabled=9)
        b = PatternStats(invocations=10, executions=20,
                         execution_cost=30.0, adjudications=40,
                         adjudication_cost=50.0, masked_failures=60,
                         unmasked_failures=70, rollbacks=80, disabled=90)
        merged = a.merge(b)
        assert merged.invocations == 11
        assert merged.executions == 22
        assert merged.execution_cost == 33.0
        assert merged.adjudications == 44
        assert merged.adjudication_cost == 55.0
        assert merged.masked_failures == 66
        assert merged.unmasked_failures == 77
        assert merged.rollbacks == 88
        assert merged.disabled == 99

    def test_merge_leaves_operands_untouched(self):
        a = PatternStats(invocations=1)
        b = PatternStats(invocations=2)
        a.merge(b)
        assert a.invocations == 1 and b.invocations == 2
