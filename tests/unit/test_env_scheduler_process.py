"""Unit tests for the message scheduler and the process machine."""

import pytest

from repro.environment.process import (
    AddressSpace,
    Instruction,
    Program,
    SimulatedProcess,
)
from repro.environment.scheduler import FIFO, PRIORITY, SHUFFLE, MessageScheduler
from repro.exceptions import (
    CodeInjectionFault,
    MemoryViolation,
    SegmentationFault,
)


class TestScheduler:
    def test_fifo_order(self):
        sched = MessageScheduler(policy=FIFO)
        for name in "abc":
            sched.submit(name, name)
        assert [m.sender for m in sched.drain()] == ["a", "b", "c"]

    def test_priority_order(self):
        sched = MessageScheduler(policy=PRIORITY)
        sched.submit("low", 1, priority=0)
        sched.submit("high", 2, priority=9)
        assert [m.sender for m in sched.drain()] == ["high", "low"]

    def test_priority_ties_break_by_arrival(self):
        sched = MessageScheduler(policy=PRIORITY)
        sched.submit("a", 1, priority=5)
        sched.submit("b", 2, priority=5)
        assert [m.sender for m in sched.drain()] == ["a", "b"]

    def test_shuffle_is_deterministic_per_seed(self):
        def order(seed):
            sched = MessageScheduler(policy=SHUFFLE, seed=seed)
            for i in range(8):
                sched.submit(f"s{i}", i)
            return [m.sender for m in sched.drain()]

        assert order(1) == order(1)
        assert order(1) != order(2)

    def test_set_priority_overrides(self):
        sched = MessageScheduler(policy=PRIORITY)
        sched.submit("a", 1, priority=0)
        sched.set_priority("b", 10)
        sched.submit("b", 2)
        assert sched.drain()[0].sender == "b"

    def test_next_removes_head(self):
        sched = MessageScheduler()
        sched.submit("a", 1)
        sched.submit("b", 2)
        assert sched.next().sender == "a"
        assert sched.pending == 1

    def test_next_on_empty_returns_none(self):
        assert MessageScheduler().next() is None

    def test_perturb_changes_policy(self):
        sched = MessageScheduler()
        sched.perturb(new_policy=SHUFFLE, new_seed=99)
        assert sched.policy == SHUFFLE and sched.seed == 99

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            MessageScheduler(policy="lifo")
        with pytest.raises(ValueError):
            MessageScheduler().perturb(new_policy="lifo")

    def test_capture_restore_roundtrip(self):
        sched = MessageScheduler(policy=PRIORITY, seed=3)
        sched.submit("a", 1, priority=2)
        state = sched.capture()
        sched.drain()
        sched.restore(state)
        assert sched.pending == 1
        assert sched.drain()[0].sender == "a"


class TestAddressSpace:
    def test_contains(self):
        space = AddressSpace(base=100, size=50)
        assert space.contains(100) and space.contains(149)
        assert not space.contains(99) and not space.contains(150)

    def test_validation(self):
        with pytest.raises(ValueError):
            AddressSpace(base=0, size=0)
        with pytest.raises(ValueError):
            AddressSpace(base=-1, size=10)


def _process(base=0, tag="t", check_tags=True):
    return SimulatedProcess("p", AddressSpace(base=base, size=1000),
                            tag=tag, check_tags=check_tags)


class TestProcessMachine:
    def test_arithmetic_program(self):
        program = Program.build("add3", [("input", 0), ("add", 3), ("ret",)],
                                tag="t")
        assert _process().execute(program, (4,)) == 7

    def test_load_store(self):
        program = Program.build("ls", [
            ("const", 5), ("store", 10), ("load", 10), ("add", 1), ("ret",),
        ], tag="t")
        assert _process().execute(program, ()) == 6

    def test_out_of_partition_access_faults(self):
        process = _process(base=1000)
        with pytest.raises(SegmentationFault):
            process.poke(5, 1)

    def test_tag_mismatch_faults(self):
        program = Program.build("x", [("const", 1), ("ret",)], tag="other")
        with pytest.raises(CodeInjectionFault):
            _process(tag="mine").execute(program, ())

    def test_tag_checking_can_be_disabled(self):
        program = Program.build("x", [("const", 1), ("ret",)], tag="other")
        assert _process(tag="mine", check_tags=False).execute(program, ()) == 1

    def test_variant_for_rebases_and_retags(self):
        program = Program.build("v", [("store", 10), ("ret",)], tag="")
        variant = program.variant_for(500, "tag-x")
        ins = variant.instructions[0]
        assert ins.args[0] == 510
        assert ins.tag == "tag-x"

    def test_const_operands_not_rebased(self):
        program = Program.build("v", [("const", 10), ("ret",)], tag="")
        variant = program.variant_for(500, "t")
        assert variant.instructions[0].args[0] == 10

    def test_call_indirect_runs_planted_code(self):
        process = _process()
        code = (Instruction("const", (11,), "t"), Instruction("ret", (), "t"))
        process.poke(200, code)
        process.poke(300, 200)
        program = Program.build("c", [("call_indirect", 300), ("ret",)],
                                tag="t")
        assert process.execute(program, ()) == 11

    def test_call_through_bad_pointer_faults(self):
        process = _process()
        process.poke(300, 5000)  # outside the partition
        program = Program.build("c", [("call_indirect", 300), ("ret",)],
                                tag="t")
        with pytest.raises(SegmentationFault):
            process.execute(program, ())

    def test_call_target_without_code_faults(self):
        process = _process()
        process.poke(300, 200)  # points at data, not code
        program = Program.build("c", [("call_indirect", 300), ("ret",)],
                                tag="t")
        with pytest.raises(MemoryViolation):
            process.execute(program, ())

    def test_copy_input_writes_sequentially(self):
        process = _process()
        program = Program.build("cp", [("copy_input", 50), ("load", 52),
                                       ("ret",)], tag="t")
        assert process.execute(program, (7, 8, 9)) == 9

    def test_unknown_opcode_rejected_at_build(self):
        with pytest.raises(ValueError):
            Instruction("jump", (0,))

    def test_trace_records_ops(self):
        program = Program.build("tr", [("const", 1), ("ret",)], tag="t")
        process = _process()
        process.execute(program, ())
        assert process.trace == ["const", "ret"]
