"""Unit tests for the diverse SQL-store substrate and replication."""

import pytest

from repro.exceptions import NoMajorityError
from repro.faults.base import CRASH, WRONG_VALUE
from repro.faults.development import Bohrbug
from repro.sqlstore.engines import (
    AppendLogEngine,
    HashIndexEngine,
    QueryError,
    SortedStoreEngine,
    diverse_engine_pool,
)
from repro.sqlstore.query import Delete, Insert, Select, Update, eq, gt, lt
from repro.sqlstore.replicated import ReplicatedStore, canonical_result

ALL_ENGINES = (HashIndexEngine, AppendLogEngine, SortedStoreEngine)


def seeded(engine):
    for i in range(5):
        engine.execute(Insert.of(id=i, name=f"n{i}", score=i * 10))
    return engine


class TestQueryModel:
    def test_insert_requires_id(self):
        with pytest.raises(ValueError):
            Insert.of(name="x")

    def test_update_protects_primary_key(self):
        with pytest.raises(ValueError):
            Update.set(eq("name", "x"), id=9)

    def test_update_needs_changes(self):
        with pytest.raises(ValueError):
            Update.set(eq("name", "x"))

    def test_predicates(self):
        row = {"id": 1, "score": 10}
        assert eq("score", 10)(row)
        assert lt("score", 11)(row)
        assert gt("score", 9)(row)
        assert not lt("missing", 5)(row)
        assert not gt("missing", 5)(row)


@pytest.mark.parametrize("engine_cls", ALL_ENGINES)
class TestEngineContract:
    """Every engine must honour the identical functional contract."""

    def test_insert_select_roundtrip(self, engine_cls):
        engine = seeded(engine_cls())
        rows = engine.execute(Select(where=eq("name", "n2")))
        assert rows == [{"id": 2, "name": "n2", "score": 20}]

    def test_duplicate_key_rejected(self, engine_cls):
        engine = seeded(engine_cls())
        with pytest.raises(QueryError):
            engine.execute(Insert.of(id=2, name="dup"))

    def test_select_all(self, engine_cls):
        engine = seeded(engine_cls())
        assert len(engine.execute(Select())) == 5

    def test_ordered_select_is_contractual(self, engine_cls):
        engine = seeded(engine_cls())
        rows = engine.execute(Select(order_by="score"))
        scores = [r["score"] for r in rows]
        assert scores == sorted(scores)

    def test_update_returns_count_and_applies(self, engine_cls):
        engine = seeded(engine_cls())
        count = engine.execute(Update.set(gt("score", 25), flag=True))
        assert count == 2
        flagged = engine.execute(Select(where=eq("flag", True)))
        assert {r["id"] for r in flagged} == {3, 4}

    def test_delete_returns_count(self, engine_cls):
        engine = seeded(engine_cls())
        assert engine.execute(Delete(where=lt("score", 25))) == 3
        assert len(engine.execute(Select())) == 2

    def test_update_after_delete(self, engine_cls):
        engine = seeded(engine_cls())
        engine.execute(Delete(where=eq("id", 3)))
        assert engine.execute(Update.set(eq("id", 3), score=0)) == 0

    def test_dump_is_id_sorted(self, engine_cls):
        engine = seeded(engine_cls())
        dump = engine.dump()
        assert [r["id"] for r in dump] == [0, 1, 2, 3, 4]

    def test_clear_and_load(self, engine_cls):
        engine = seeded(engine_cls())
        snapshot = engine.dump()
        engine.clear()
        assert engine.dump() == []
        engine.load(snapshot)
        assert engine.dump() == snapshot


class TestEngineDiversity:
    def test_unordered_iteration_orders_differ(self):
        """The non-determinism Gashi et al. warn about: equivalent
        engines legitimately return unordered SELECTs differently."""
        engines = [seeded(cls()) for cls in ALL_ENGINES]
        # Touch a row so the log engine's recency order diverges.
        for engine in engines:
            engine.execute(Update.set(eq("id", 0), score=5))
        orders = [tuple(r["id"] for r in engine.execute(Select()))
                  for engine in engines]
        assert len(set(orders)) > 1

    def test_dumps_agree_despite_order(self):
        engines = [seeded(cls()) for cls in ALL_ENGINES]
        dumps = [engine.dump() for engine in engines]
        assert dumps[0] == dumps[1] == dumps[2]


class TestCanonicalisation:
    def test_unordered_select_canonical_forms_agree(self):
        engines = [seeded(cls()) for cls in ALL_ENGINES]
        statement = Select()
        forms = {canonical_result(statement, e.execute(statement))
                 for e in engines}
        assert len(forms) == 1

    def test_ordered_select_keeps_order(self):
        statement = Select(order_by="score")
        result = [{"id": 2, "score": 20}, {"id": 1, "score": 30}]
        form = canonical_result(statement, result)
        assert form[0][0] == ("id", 2)

    def test_scalars_pass_through(self):
        assert canonical_result(Update.set(eq("id", 1), v=2), 3) == 3


class TestReplicatedStore:
    def test_needs_two_engines(self):
        with pytest.raises(ValueError):
            ReplicatedStore([HashIndexEngine()])

    def test_healthy_replication(self):
        store = ReplicatedStore(diverse_engine_pool())
        store.execute(Insert.of(id=1, v=10))
        assert store.execute(Select(where=eq("id", 1))) == [
            {"id": 1, "v": 10}]
        assert store.stats.masked_failures == 0

    def test_unordered_select_does_not_false_alarm(self):
        store = ReplicatedStore(diverse_engine_pool())
        for i in range(6):
            store.execute(Insert.of(id=i, v=i))
        store.execute(Update.set(eq("id", 0), v=100))  # skew log order
        result = store.execute(Select())
        assert len(result) == 6
        assert store.stats.vote_failures == 0

    def test_without_canonicalisation_row_order_false_alarms(self):
        store = ReplicatedStore(diverse_engine_pool(), canonicalise=False)
        # Non-ascending inserts make all three iteration orders differ:
        # insertion order (hash), recency (log), ascending id (sorted).
        for i in (3, 1, 5, 0, 4, 2):
            store.execute(Insert.of(id=i, v=i))
        with pytest.raises(NoMajorityError):
            store.execute(Select())

    def test_wrong_value_replica_outvoted(self):
        bug = Bohrbug("count-bug",
                      predicate=lambda args: isinstance(args[0], Update),
                      effect=WRONG_VALUE)
        store = ReplicatedStore(diverse_engine_pool({1: [bug]}))
        for i in range(3):
            store.execute(Insert.of(id=i, v=i))
        assert store.execute(Update.set(eq("id", 1), v=9)) == 1
        assert store.stats.masked_failures == 1

    def test_crashing_replica_masked_and_state_repaired(self):
        bug = Bohrbug("insert-crash",
                      predicate=lambda args: isinstance(args[0], Insert),
                      effect=CRASH)
        engines = diverse_engine_pool({2: [bug]})
        store = ReplicatedStore(engines, auto_reconcile=True)
        store.execute(Insert.of(id=1, v=1))
        # The crashed replica missed the insert but reconciliation
        # copied the majority state into it.
        assert engines[2].dump() == [{"id": 1, "v": 1}]
        assert store.stats.repaired_replicas >= 1
        assert store.diverged_replicas() == []

    def test_without_reconcile_state_diverges(self):
        bug = Bohrbug("insert-crash",
                      predicate=lambda args: isinstance(args[0], Insert),
                      effect=CRASH)
        engines = diverse_engine_pool({2: [bug]})
        store = ReplicatedStore(engines, auto_reconcile=False)
        store.execute(Insert.of(id=1, v=1))
        assert engines[2] in store.diverged_replicas()

    def test_majority_crash_raises(self):
        def is_insert(args):
            return isinstance(args[0], Insert)

        engines = diverse_engine_pool(
            {0: [Bohrbug("b0", predicate=is_insert)],
             1: [Bohrbug("b1", predicate=is_insert)]})
        store = ReplicatedStore(engines)
        with pytest.raises(NoMajorityError):
            store.execute(Insert.of(id=1, v=1))

    def test_operator_error_repaired_by_reconcile(self):
        engines = diverse_engine_pool()
        store = ReplicatedStore(engines)
        for i in range(4):
            store.execute(Insert.of(id=i, v=i))
        # Out-of-band corruption of one replica (operator mishap).
        engines[0].clear()
        assert engines[0] in store.diverged_replicas()
        assert store.reconcile() == 1
        assert store.diverged_replicas() == []
        assert engines[0].dump() == engines[1].dump()
