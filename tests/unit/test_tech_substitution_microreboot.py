"""Unit tests for dynamic service substitution and (micro-)reboot."""

import pytest

from repro.components.component import RestartableComponent
from repro.components.interface import FunctionSpec
from repro.environment import SimEnvironment
from repro.exceptions import AllAlternativesFailedError, CrashFailure
from repro.faults.development import Heisenbug
from repro.services.broker import ServiceBroker
from repro.services.registry import ServiceRegistry
from repro.services.service import Service
from repro.taxonomy.paper import paper_entry
from repro.techniques.microreboot import MicroReboot, ModularApplication
from repro.techniques.service_substitution import DynamicServiceSubstitution

QUOTE = FunctionSpec("quote", arity=1, semantic_key="stock-quote")
QUOTE2 = FunctionSpec("quote-v2", arity=1, semantic_key="stock-quote")


def quote_service(name, availability=1.0, value=100):
    return Service(name, QUOTE, impl=lambda sym: value,
                   availability=availability)


class TestServiceSubstitution:
    def _broker(self, *services):
        registry = ServiceRegistry()
        for service in services:
            registry.publish(service)
        return ServiceBroker(registry)

    def test_taxonomy_matches_paper(self):
        assert DynamicServiceSubstitution.TAXONOMY.matches(
            paper_entry("Dynamic service substitution"))

    def test_healthy_binding_used(self):
        broker = self._broker(quote_service("a"))
        proxy = DynamicServiceSubstitution(QUOTE, broker)
        assert proxy.invoke("ACME") == 100
        assert proxy.stats.substitutions == 0

    def test_failover_to_substitute(self):
        dead = quote_service("dead", availability=0.0)
        alive = quote_service("alive", value=42)
        broker = self._broker(dead, alive)
        proxy = DynamicServiceSubstitution(QUOTE, broker, initial=dead)
        assert proxy.invoke("ACME") == 42
        assert proxy.stats.substitutions == 1
        assert proxy.stats.failures_seen == 1

    def test_sticky_rebinding(self):
        dead = quote_service("dead", availability=0.0)
        alive = quote_service("alive", value=42)
        proxy = DynamicServiceSubstitution(QUOTE,
                                           self._broker(dead, alive),
                                           initial=dead, sticky=True)
        proxy.invoke("ACME")
        assert proxy.bound is alive
        proxy.invoke("ACME")
        assert proxy.stats.failures_seen == 1  # no repeat failure

    def test_non_sticky_retries_original(self):
        dead = quote_service("dead", availability=0.0)
        alive = quote_service("alive", value=42)
        proxy = DynamicServiceSubstitution(QUOTE,
                                           self._broker(dead, alive),
                                           initial=dead, sticky=False)
        proxy.invoke("ACME")
        assert proxy.bound is dead
        proxy.invoke("ACME")
        assert proxy.stats.failures_seen == 2

    def test_adapted_substitute_used_when_no_exact_match(self):
        dead = quote_service("dead", availability=0.0)
        similar = Service("other", QUOTE2, impl=lambda sym: 7)
        broker = self._broker(dead, similar)
        broker.register_converter("quote-v2", "quote",
                                  convert_args=lambda args: args)
        proxy = DynamicServiceSubstitution(QUOTE, broker, initial=dead)
        assert proxy.invoke("ACME") == 7
        assert proxy.stats.adapted_substitutions == 1

    def test_all_substitutes_down_raises(self):
        dead1 = quote_service("dead1", availability=0.0)
        dead2 = quote_service("dead2", availability=0.0)
        proxy = DynamicServiceSubstitution(QUOTE,
                                           self._broker(dead1, dead2),
                                           initial=dead1)
        with pytest.raises(AllAlternativesFailedError):
            proxy.invoke("ACME")
        assert proxy.stats.exhausted == 1

    def test_more_alternates_raise_availability(self):
        env = SimEnvironment(seed=6)

        def success_rate(k):
            services = [quote_service(f"s{i}-{k}", availability=0.6)
                        for i in range(k)]
            proxy = DynamicServiceSubstitution(
                QUOTE, self._broker(*services), initial=services[0],
                sticky=False)
            ok = 0
            for _ in range(400):
                try:
                    proxy.invoke("ACME", env=env)
                    ok += 1
                except AllAlternativesFailedError:
                    pass
            return ok / 400

        assert success_rate(3) > success_rate(1)


def flaky_component(name, crash_probability, restart_cost=2.0):
    def handler(component, request, env):
        return f"{name}:{request}"

    return RestartableComponent(
        name, handler,
        faults=[Heisenbug(f"{name}-crash", probability=crash_probability,
                          effect="crash")],
        restart_cost=restart_cost)


class TestMicroReboot:
    def test_taxonomy_matches_paper(self):
        assert MicroReboot.TAXONOMY.matches(
            paper_entry("Reboot and micro-reboot"))

    def test_unique_component_names_required(self):
        a = flaky_component("a", 0)
        with pytest.raises(ValueError):
            ModularApplication([a, flaky_component("a", 0)])

    def test_crash_recovered_by_micro_reboot(self):
        env = SimEnvironment(seed=4)
        app = ModularApplication([flaky_component("cart", 0.5),
                                  flaky_component("catalog", 0.0)])
        manager = MicroReboot(app, env=env, scope="micro")
        for i in range(50):
            assert manager.handle("cart", i) == f"cart:{i}"
        assert manager.stats.crashes > 0
        assert manager.stats.served == 50

    def test_micro_reboot_restarts_only_crashed_component(self):
        env = SimEnvironment(seed=4)
        cart = flaky_component("cart", 1.0)
        catalog = flaky_component("catalog", 0.0)
        app = ModularApplication([cart, catalog])
        manager = MicroReboot(app, env=env, scope="micro")
        # cart crashes on first touch; retry crashes again -> propagates
        with pytest.raises(Exception):
            manager.handle("cart", 1)
        assert catalog.restarts == 0

    def test_full_reboot_restarts_everything(self):
        env = SimEnvironment(seed=4)
        cart = flaky_component("cart", 0.5)
        catalog = flaky_component("catalog", 0.0)
        app = ModularApplication([cart, catalog])
        manager = MicroReboot(app, env=env, scope="full")
        for i in range(30):
            manager.handle("cart", i)
        assert manager.stats.reboots > 0
        assert catalog.restarts == cart.restarts  # all restarted together

    def test_micro_downtime_much_less_than_full(self):
        def downtime(scope):
            env = SimEnvironment(seed=4)
            app = ModularApplication([flaky_component("cart", 0.5),
                                      flaky_component("catalog", 0.0)])
            manager = MicroReboot(app, env=env, scope=scope)
            for i in range(40):
                manager.handle("cart", i)
            assert manager.stats.reboots > 0
            return manager.stats.downtime / manager.stats.reboots

        assert downtime("micro") * 10 < downtime("full")

    def test_state_lost_on_restart(self):
        def handler(component, request, env):
            count = component.state.data.get("count", 0) + 1
            component.state["count"] = count
            return count

        comp = RestartableComponent("c", handler,
                                    initializer=lambda: {"count": 0})
        app = ModularApplication([comp])
        manager = MicroReboot(app, scope="micro")
        assert manager.handle("c", "r") == 1
        assert manager.handle("c", "r") == 2
        comp.down = True
        assert manager.handle("c", "r") == 1  # fresh state after reboot

    def test_scope_validated(self):
        with pytest.raises(ValueError):
            MicroReboot(ModularApplication([flaky_component("a", 0)]),
                        scope="nano")
