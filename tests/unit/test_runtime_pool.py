"""Warm worker pools: registry reuse, fork safety, lifecycle.

The warm-pool registry must be a pure acceleration: a map served by a
reused executor returns the same bytes (results *and* merged telemetry)
as per-call executors and as the serial path, and its lifecycle edges —
forked children, broken workers, shutdown — fail safe rather than
sharing executors across processes.
"""

import os

import pytest

from repro import observe
from repro.runtime.pmap import ParallelMap
from repro.runtime.pool import (
    WorkerPool,
    get_pool,
    pool_stats,
    retire_pool,
    shutdown_pools,
)

#: Pool self-metrics are backend-dependent by design; byte-identity
#: covers the workload series only (same contract as
#: test_parallel_telemetry).
EXCLUDE = ("repro_runtime_",)

_PARENT_PID = os.getpid()


# -- module-level (picklable) tasks for the process backend --


def _square(x):
    return x * x


def _noisy(x):
    """Publishes an event and bumps a counter per item (dyadic cost)."""
    tel = observe.current()
    if tel.enabled:
        tel.metrics.inc("pool_test_items_total", parity=str(x % 2))
        tel.publish("pool.test", item=x)
    return x + 1


def _die_in_worker(x):
    """Kills the hosting *worker* process; harmless in the parent, so
    the retry-once-serial rerun completes the map."""
    if os.getpid() != _PARENT_PID:
        os._exit(3)
    return x


@pytest.fixture(autouse=True)
def _fresh_registry():
    """Each test starts and ends with an empty warm-pool registry."""
    shutdown_pools()
    yield
    shutdown_pools()


class TestWorkerPool:
    def test_acquire_spawns_once_and_counts_reuses(self):
        with WorkerPool("thread", 2) as pool:
            assert not pool.warm and pool.reuses == 0
            first = pool.acquire()
            assert pool.warm and pool.reuses == 0
            assert pool.acquire() is first
            assert pool.acquire() is first
            assert pool.reuses == 2
        assert pool.dead

    def test_acquire_after_shutdown_raises(self):
        pool = WorkerPool("thread", 2)
        pool.acquire()
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.acquire()

    def test_rejects_bad_signatures(self):
        with pytest.raises(ValueError):
            WorkerPool("serial", 2)
        with pytest.raises(ValueError):
            WorkerPool("thread", 0)


class TestRegistry:
    def test_same_signature_same_pool(self):
        a = get_pool("thread", 2)
        assert get_pool("thread", 2) is a
        assert get_pool("thread", 3) is not a
        assert get_pool("process", 2) is not a

    def test_dead_entry_is_replaced(self):
        a = get_pool("thread", 2)
        a.shutdown()
        b = get_pool("thread", 2)
        assert b is not a and not b.dead

    def test_retire_removes_and_kills(self):
        a = get_pool("thread", 2)
        a.acquire()
        retire_pool(a)
        assert a.dead
        assert get_pool("thread", 2) is not a

    def test_shutdown_pools_reports_warm_count_and_clears(self):
        get_pool("thread", 2).acquire()
        get_pool("thread", 3)  # created but never spawned
        assert shutdown_pools() == 1
        assert pool_stats() == []

    def test_pool_stats_rows(self):
        get_pool("thread", 2).acquire()
        pool = ParallelMap(workers=2, backend="thread")
        pool.map(_square, range(8))
        rows = pool_stats()
        assert rows == [{"backend": "thread", "workers": 2,
                         "warm": True, "reuses": 1}]


class TestForkSafety:
    def test_forked_child_refuses_parent_pool(self):
        parent_pool = get_pool("thread", 2)
        parent_pool.acquire()
        pid = os.fork()
        if pid == 0:  # child: report via exit code, never run pytest
            code = 1
            try:
                try:
                    parent_pool.acquire()
                except RuntimeError:
                    # And the registry must hand the child a fresh pool,
                    # not the parent's entry.
                    if get_pool("thread", 2) is not parent_pool:
                        code = 0
            except BaseException:
                code = 2
            os._exit(code)
        _, status = os.waitpid(pid, 0)
        assert os.WEXITSTATUS(status) == 0
        # The parent's pool is untouched by the child's fork guard.
        assert parent_pool.acquire() is not None


class TestParallelMapReuse:
    def test_second_map_reuses_and_matches_serial(self):
        serial = [_square(x) for x in range(20)]
        pool = ParallelMap(workers=2, backend="thread")
        first = pool.map(_square, range(20))
        assert pool.stats.pool_reuses == 0
        second = pool.map(_square, range(20))
        assert pool.stats.pool_reuses == 1
        other = ParallelMap(workers=2, backend="thread")
        third = other.map(_square, range(20))
        assert other.stats.pool_reuses == 1  # shared across instances
        assert first == second == third == serial

    def test_reuse_false_keeps_registry_empty(self):
        pool = ParallelMap(workers=2, backend="thread", reuse=False)
        assert pool.map(_square, range(12)) == [_square(x)
                                                for x in range(12)]
        assert pool.stats.pool_reuses == 0
        assert pool_stats() == []

    def test_warm_process_pool_telemetry_matches_serial(self):
        def run(reuse, backend):
            pool = ParallelMap(workers=3, backend=backend,
                               chunk_size=2, reuse=reuse)
            with observe.session() as tel:
                results = pool.map(_noisy, range(10))
            return results, tel

        serial_results = [_noisy(x) for x in range(10)]
        expected, serial_tel = run(False, "serial")
        assert expected == serial_results
        for backend in ("thread", "process"):
            cold_results, cold_tel = run(True, backend)   # spawns
            warm_results, warm_tel = run(True, backend)   # reuses
            assert cold_results == warm_results == expected
            for tel in (cold_tel, warm_tel):
                assert tel.metrics.as_dict(exclude=EXCLUDE) \
                    == serial_tel.metrics.as_dict(exclude=EXCLUDE)
                assert ([(e.topic, e.seq, e.payload)
                         for e in tel.bus.history]
                        == [(e.topic, e.seq, e.payload)
                            for e in serial_tel.bus.history])

    def test_broken_warm_pool_is_retired_and_map_completes(self):
        pool = ParallelMap(workers=2, backend="process", chunk_size=4)
        warm_before = get_pool("process", 2)
        results = pool.map(_die_in_worker, range(8))
        # Every chunk was re-run serially in the parent.
        assert results == list(range(8))
        assert pool.stats.serial_retries >= 1
        # The poisoned executor must not survive in the registry.
        assert get_pool("process", 2) is not warm_before

    def test_prewarm_spawns_ahead_of_map(self):
        pool = ParallelMap(workers=2, backend="thread")
        assert pool.prewarm() == "thread"
        assert pool_stats() == [{"backend": "thread", "workers": 2,
                                 "warm": True, "reuses": 0}]
        pool.map(_square, range(8))
        assert pool.stats.pool_reuses == 1  # the very first map reused

    def test_prewarm_resolves_serial_to_noop(self):
        pool = ParallelMap(workers=1, backend="auto")
        assert pool.prewarm() == "serial"
        assert pool_stats() == []
