"""Unit tests for the experiment harness."""

import pytest

from repro.faults.malicious import AttackPayload
from repro.harness.experiment import Experiment, run_trials, summarize
from repro.harness.report import (
    comparison_row,
    format_cell,
    render_series,
    render_table,
)
from repro.harness.workload import (
    attack_mix,
    load_phases,
    request_stream,
    uniform_inputs,
)


class TestExperiment:
    def test_run_covers_all_seeds(self):
        exp = Experiment(name="e", trial=lambda s: {"x": float(s)},
                         seeds=(1, 2, 3))
        results = exp.run()
        assert [r.seed for r in results] == [1, 2, 3]

    def test_summary_means(self):
        exp = Experiment(name="e", trial=lambda s: {"x": float(s), "y": 1.0},
                         seeds=(0, 10))
        summary = exp.summary()
        assert summary["x"] == 5.0 and summary["y"] == 1.0

    def test_run_trials_functional(self):
        results = run_trials(lambda s: {"v": s * 2.0}, seeds=[1, 2])
        assert summarize(results)["v"] == 3.0

    def test_summarize_empty(self):
        assert summarize([]) == {}

    def test_summarize_reports_stdev(self):
        results = run_trials(lambda s: {"x": float(s)}, seeds=[0, 4])
        summary = summarize(results)
        assert summary["x"] == 2.0
        assert summary["x_stdev"] == pytest.approx(2.8284271247461903)

    def test_summarize_single_trial_stdev_is_zero(self):
        assert summarize(run_trials(lambda s: {"x": 3.0},
                                    seeds=[1]))["x_stdev"] == 0.0

    def test_summarize_tolerates_heterogeneous_keys(self):
        # A metric only reported by some trials (e.g. recovery latency
        # when a fault actually struck) averages over its reporters.
        results = run_trials(
            lambda s: {"x": 1.0, "rare": 10.0} if s else {"x": 3.0},
            seeds=[0, 1, 2])
        summary = summarize(results)
        assert summary["x"] == pytest.approx(5.0 / 3.0)
        assert summary["rare"] == 10.0
        assert summary["rare_stdev"] == 0.0

    def test_summary_accepts_precomputed_results(self):
        calls = []

        def trial(seed):
            calls.append(seed)
            return {"x": float(seed)}

        exp = Experiment(name="e", trial=trial, seeds=(1, 3))
        results = exp.run()
        summary = exp.summary(results)
        assert summary["x"] == 2.0
        assert calls == [1, 3]  # trials ran once, not twice

    def test_instrumented_run_attaches_telemetry(self):
        from repro import observe
        from repro.environment import SimEnvironment
        from repro.techniques.nvp import NVersionProgramming
        from repro.components.library import diverse_versions

        def trial(seed):
            env = SimEnvironment(seed=seed)
            nvp = NVersionProgramming(
                diverse_versions(lambda x: x + 1, 3, 0.1, seed=seed))
            for x in range(5):
                nvp.execute(x, env=env)
            return {"executions": float(nvp.stats.executions)}

        plain = Experiment(name="e", trial=trial, seeds=(0, 1)).run()
        instrumented = Experiment(name="e", trial=trial, seeds=(0, 1),
                                  instrument=True).run()
        assert all(r.telemetry is None for r in plain)
        for r in instrumented:
            assert r.telemetry["spans"]["unit.run"]["count"] == 15
        # telemetry never feeds back into the trial
        assert ([r.metrics for r in plain]
                == [r.metrics for r in instrumented])
        assert observe.current().enabled is False


class TestWorkloads:
    def test_uniform_inputs_deterministic(self):
        assert uniform_inputs(10, seed=4) == uniform_inputs(10, seed=4)
        assert uniform_inputs(10, seed=4) != uniform_inputs(10, seed=5)

    def test_uniform_inputs_range(self):
        values = uniform_inputs(100, low=5, high=10, seed=0)
        assert all(5 <= v < 10 for v in values)

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            uniform_inputs(-1)
        with pytest.raises(ValueError):
            uniform_inputs(1, low=5, high=5)

    def test_request_stream_kinds(self):
        stream = request_stream(50, seed=1, kinds=("a", "b"))
        assert {kind for kind, _ in stream} <= {"a", "b"}
        assert len(stream) == 50

    def test_request_stream_needs_kinds(self):
        with pytest.raises(ValueError):
            request_stream(5, kinds=())

    def test_attack_mix_composition(self):
        mix = attack_mix(benign=10, attacks=4, seed=2)
        attacks = [m for m in mix if isinstance(m, AttackPayload)]
        assert len(attacks) == 4
        assert len(mix) == 14
        kinds = {a.kind for a in attacks}
        assert kinds == {"absolute-address", "code-injection"}

    def test_attack_mix_deterministic(self):
        a = [getattr(m, "kind", m) for m in attack_mix(5, 3, seed=9)]
        b = [getattr(m, "kind", m) for m in attack_mix(5, 3, seed=9)]
        assert a == b

    def test_load_phases(self):
        points = list(load_phases([(3, 0.1), (2, 0.9)], seed=0))
        assert len(points) == 5
        assert [load for _, load in points] == [0.1, 0.1, 0.1, 0.9, 0.9]


class TestReport:
    def test_format_cell(self):
        assert format_cell(True) == "yes"
        assert format_cell(0.123456) == "0.1235"
        assert format_cell(1e-6) == "1.00e-06"
        assert format_cell("x") == "x"

    def test_render_table(self):
        text = render_table(("a", "b"), [(1.23456, True)])
        assert "1.235" in text and "yes" in text

    def test_render_series(self):
        text = render_series("n", ("reliability",), [(3, 0.9), (5, 0.99)])
        assert "n" in text and "0.99" in text

    def test_comparison_row(self):
        row = comparison_row("C1", "2k+1 tolerates k", 0.99, True)
        assert row[-1] == "HOLDS"
        assert comparison_row("C1", "x", 1, False)[-1] == "DEVIATES"

    def test_render_telemetry_rows(self):
        from repro.harness.report import render_telemetry

        text = render_telemetry({
            "spans": {"unit.run": {"count": 3, "cost": 3.0, "errors": 1}},
            "events": {"fault.injected": 2},
            "metrics": {"repro_reboots_total": 1.0},
        })
        assert "span" in text and "unit.run" in text
        assert "event" in text and "fault.injected" in text
        assert "metric" in text and "repro_reboots_total" in text
