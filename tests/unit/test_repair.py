"""Unit tests for the GP-repair substrate: AST, interpreter, mutation,
engine."""

import random

import pytest

from repro.adjudicators.acceptance import TestSuiteAdjudicator
from repro.exceptions import RepairFailedError
from repro.repair.ast_ops import (
    Assign,
    BinOp,
    Compare,
    Const,
    EvaluationError,
    If,
    Interpreter,
    Program,
    Return,
    Var,
    While,
    render,
)
from repro.repair.engine import GeneticRepairEngine
from repro.repair.mutation import all_sites, crossover, mutate, node_at, replace


def max_program():
    """Correct: return max(a, b)."""
    return Program(
        name="maxp", params=("a", "b"),
        body=(
            If(cond=Compare(">", Var("a"), Var("b")),
               then=(Return(Var("a")),),
               orelse=(Return(Var("b")),)),
        ))


def buggy_max_program():
    """Seeded Bohrbug: comparison flipped."""
    return Program(
        name="maxp", params=("a", "b"),
        body=(
            If(cond=Compare("<", Var("a"), Var("b")),
               then=(Return(Var("a")),),
               orelse=(Return(Var("b")),)),
        ))


def sum_to_n():
    """Correct: sum of 1..n via a loop."""
    return Program(
        name="sum", params=("n",),
        body=(
            Assign("acc", Const(0)),
            Assign("i", Const(1)),
            While(cond=Compare("<=", Var("i"), Var("n")),
                  body=(Assign("acc", BinOp("+", Var("acc"), Var("i"))),
                        Assign("i", BinOp("+", Var("i"), Const(1))))),
            Return(Var("acc")),
        ))


class TestInterpreter:
    def test_max(self):
        program = max_program()
        assert program(3, 9) == 9
        assert program(9, 3) == 9

    def test_loop(self):
        assert sum_to_n()(10) == 55

    def test_programs_are_callable(self):
        assert max_program()(1, 2) == 2

    def test_wrong_arity(self):
        with pytest.raises(EvaluationError):
            max_program()(1)

    def test_unbound_variable(self):
        program = Program("p", ("x",), body=(Return(Var("y")),))
        with pytest.raises(EvaluationError):
            program(1)

    def test_division_by_zero(self):
        program = Program("p", ("x",),
                          body=(Return(BinOp("//", Const(1), Var("x"))),))
        assert program(2) == 0
        with pytest.raises(EvaluationError):
            program(0)

    def test_fuel_stops_divergence(self):
        diverging = Program(
            "spin", ("x",),
            body=(While(cond=Compare("==", Const(1), Const(1)), body=(
                Assign("x", BinOp("+", Var("x"), Const(1))),)),
                Return(Var("x"))))
        with pytest.raises(EvaluationError):
            Interpreter(fuel=500).run(diverging, (0,))

    def test_fall_off_the_end(self):
        program = Program("p", (), body=(Assign("x", Const(1)),))
        with pytest.raises(EvaluationError):
            program()

    def test_min_max_ops(self):
        program = Program("p", ("a", "b"),
                          body=(Return(BinOp("min", Var("a"), Var("b"))),))
        assert program(3, 9) == 3

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            BinOp("%", Const(1), Const(2))
        with pytest.raises(ValueError):
            Compare("~", Const(1), Const(2))

    def test_render_produces_pseudo_code(self):
        text = render(sum_to_n())
        assert "def sum(n):" in text
        assert "while" in text
        assert "return acc" in text


class TestMutation:
    def test_all_sites_nonempty(self):
        sites = all_sites(max_program())
        assert len(sites) >= 5

    def test_node_at_roundtrip(self):
        program = max_program()
        for path, node in all_sites(program):
            assert node_at(program, path) is node

    def test_replace_changes_only_target(self):
        program = max_program()
        sites = [s for s in all_sites(program)
                 if isinstance(s[1], Compare)]
        path, node = sites[0]
        patched = replace(program, path, Compare(">=", node.left, node.right))
        assert node_at(patched, path).op == ">="
        # original untouched (immutability)
        assert node_at(program, path).op == ">"

    def test_mutate_produces_different_program(self):
        rng = random.Random(0)
        program = max_program()
        mutant = mutate(program, rng)
        assert mutant != program

    def test_mutate_preserves_validity(self):
        rng = random.Random(1)
        program = sum_to_n()
        for _ in range(50):
            program = mutate(program, rng)
            try:
                program(3)
            except EvaluationError:
                pass  # crashes allowed; invalid trees are not

    def test_crossover_type_compatible(self):
        rng = random.Random(2)
        child = crossover(buggy_max_program(), max_program(), rng)
        # Child remains a structurally valid program.
        assert isinstance(child, Program)
        try:
            child(1, 2)
        except EvaluationError:
            pass


class TestRepairEngine:
    def _suite(self):
        cases = [((a, b), max(a, b))
                 for a in (0, 3, 7) for b in (1, 3, 9)]
        return TestSuiteAdjudicator(cases)

    def test_repairs_flipped_comparison(self):
        engine = GeneticRepairEngine(self._suite(), population_size=30,
                                     max_generations=30, seed=4)
        result = engine.repair(buggy_max_program())
        assert result.fixed
        assert result.program(5, 2) == 5
        assert result.fitness == 1.0

    def test_healthy_program_needs_no_generations(self):
        engine = GeneticRepairEngine(self._suite(), seed=0)
        result = engine.repair(max_program())
        assert result.fixed and result.generations == 0

    def test_repair_or_raise(self):
        # Unreachable target: tests demand a constant unrelated to params.
        impossible = TestSuiteAdjudicator([((i,), 123456789 + i * 977)
                                           for i in range(6)])
        program = Program("p", ("x",), body=(Return(Var("x")),))
        engine = GeneticRepairEngine(impossible, population_size=8,
                                     max_generations=2, seed=0)
        with pytest.raises(RepairFailedError):
            engine.repair_or_raise(program)

    def test_deterministic_given_seed(self):
        def run(seed):
            engine = GeneticRepairEngine(self._suite(), population_size=20,
                                         max_generations=10, seed=seed)
            return engine.repair(buggy_max_program())

        a, b = run(7), run(7)
        assert a.generations == b.generations
        assert a.evaluations == b.evaluations

    def test_parameter_validation(self):
        suite = self._suite()
        with pytest.raises(ValueError):
            GeneticRepairEngine(suite, population_size=1)
        with pytest.raises(ValueError):
            GeneticRepairEngine(suite, max_generations=0)
        with pytest.raises(ValueError):
            GeneticRepairEngine(suite, crossover_rate=2.0)
        with pytest.raises(ValueError):
            GeneticRepairEngine(suite, elitism=40, population_size=10)
        with pytest.raises(ValueError):
            GeneticRepairEngine(suite, tournament=0)


class TestBloatControl:
    def test_population_size_stays_bounded(self):
        from repro.repair.mutation import all_sites
        from tests.unit.test_repair import buggy_max_program  # self-import
        suite = TestSuiteAdjudicator(
            [((a, b), max(a, b)) for a in (0, 3) for b in (1, 9)])
        engine = GeneticRepairEngine(suite, population_size=20,
                                     max_generations=15,
                                     crossover_rate=0.9,  # bloat pressure
                                     max_nodes=60, seed=5)
        scored = engine._score([buggy_max_program()] * 20)
        for _ in range(15):
            population = engine._next_generation(scored)
            scored = engine._score(population)
            assert all(len(all_sites(p)) <= 60 * 3 for p in population)

    def test_max_nodes_validated(self):
        suite = TestSuiteAdjudicator([((1,), 1)])
        with pytest.raises(ValueError):
            GeneticRepairEngine(suite, max_nodes=0)
