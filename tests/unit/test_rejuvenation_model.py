"""Unit tests for the Huang four-state rejuvenation model."""

import pytest

from repro.analysis.rejuvenation_model import (
    FAILED,
    PROBABLE,
    REJUVENATING,
    ROBUST,
    RejuvenationModel,
    optimal_rejuvenation_rate,
)


class TestModelConstruction:
    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            RejuvenationModel(p_age=1.5)
        with pytest.raises(ValueError):
            RejuvenationModel(p_fail=0.7, p_rejuvenate=0.5)

    def test_steady_state_sums_to_one(self):
        pi = RejuvenationModel(p_rejuvenate=0.1).steady_state()
        assert sum(pi.values()) == pytest.approx(1.0)
        assert set(pi) == {ROBUST, PROBABLE, FAILED, REJUVENATING}


class TestAvailability:
    def test_no_rejuvenation_baseline(self):
        model = RejuvenationModel(p_rejuvenate=0.0)
        assert model.scheduled_downtime() == pytest.approx(0.0, abs=1e-9)
        assert model.unscheduled_downtime() > 0.0

    def test_rejuvenation_reduces_unscheduled_downtime(self):
        without = RejuvenationModel(p_rejuvenate=0.0)
        with_rej = RejuvenationModel(p_rejuvenate=0.2)
        assert (with_rej.unscheduled_downtime()
                < without.unscheduled_downtime())
        assert with_rej.scheduled_downtime() > 0.0

    def test_rejuvenation_lowers_downtime_cost(self):
        # The Huang argument: crash downtime is ~10x costlier than a
        # scheduled restart, so converting one into the other pays.
        without = RejuvenationModel(p_rejuvenate=0.0)
        with_rej = RejuvenationModel(p_rejuvenate=0.2)
        assert (with_rej.downtime_cost(crash_cost=10, rejuvenation_cost=1)
                < without.downtime_cost(crash_cost=10,
                                        rejuvenation_cost=1))

    def test_rejuvenation_not_free_when_costs_are_equal(self):
        # If a scheduled restart cost as much as a crash, aggressive
        # rejuvenation would not beat the baseline.
        without = RejuvenationModel(p_rejuvenate=0.0,
                                    p_refresh=0.10)  # as slow as repair
        aggressive = RejuvenationModel(p_rejuvenate=0.9, p_refresh=0.10)
        assert (aggressive.downtime_cost(crash_cost=1, rejuvenation_cost=1)
                >= without.downtime_cost(crash_cost=1,
                                         rejuvenation_cost=1) - 1e-9)


class TestOptimalRate:
    def test_positive_when_crashes_are_expensive(self):
        base = RejuvenationModel()
        rate = optimal_rejuvenation_rate(base, crash_cost=10.0,
                                         rejuvenation_cost=1.0)
        assert rate > 0.0

    def test_zero_when_rejuvenation_is_worthless(self):
        # Scheduled restarts as slow as repairs and as costly as crashes:
        # the optimum is to never rejuvenate.
        base = RejuvenationModel(p_refresh=0.05)  # slower than repair
        rate = optimal_rejuvenation_rate(base, crash_cost=1.0,
                                         rejuvenation_cost=2.0)
        assert rate == 0.0

    def test_cost_validation(self):
        with pytest.raises(ValueError):
            RejuvenationModel().downtime_cost(crash_cost=-1)
