"""Unit tests for the three Figure-1 pattern engines."""

import pytest

from repro.adjudicators.acceptance import PredicateAcceptanceTest
from repro.adjudicators.voting import MajorityVoter, UnanimousVoter
from repro.components.state import DictState
from repro.components.version import Version
from repro.environment import SimEnvironment
from repro.exceptions import (
    AllAlternativesFailedError,
    BohrbugFailure,
    NoMajorityError,
)
from repro.faults.development import Bohrbug, InputRegion
from repro.patterns.base import GuardedUnit, VersionUnit, as_units
from repro.patterns.parallel_evaluation import ParallelEvaluation
from repro.patterns.parallel_selection import ParallelSelection
from repro.patterns.sequential_alternatives import SequentialAlternatives


def good(name="good", cost=1.0):
    return Version(name, impl=lambda x: x * 2, exec_cost=cost)


def bad(name="bad", cost=1.0):
    """Fails on every input below 1e9."""
    return Version(name, impl=lambda x: x * 2, exec_cost=cost,
                   faults=[Bohrbug(f"{name}-bug",
                                   region=InputRegion(0, 10 ** 9))])


def wrong(name="wrong"):
    """Silently returns a wrong value everywhere."""
    return Version(name, impl=lambda x: x * 2 + 13)


class TestAsUnits:
    def test_wraps_versions(self):
        units = as_units([good()])
        assert isinstance(units[0], VersionUnit)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            as_units([42])

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            ParallelEvaluation([])


class TestParallelEvaluation:
    def test_all_good_votes_value(self):
        pattern = ParallelEvaluation([good("a"), good("b"), good("c")])
        assert pattern.execute(4) == 8

    def test_minority_crash_masked(self):
        pattern = ParallelEvaluation([good("a"), good("b"), bad("c")])
        assert pattern.execute(4) == 8
        assert pattern.stats.masked_failures == 1

    def test_minority_wrong_value_masked(self):
        pattern = ParallelEvaluation([good("a"), good("b"), wrong("c")])
        assert pattern.execute(4) == 8

    def test_majority_failure_raises(self):
        pattern = ParallelEvaluation([good("a"), bad("b"), bad("c")])
        with pytest.raises(NoMajorityError):
            pattern.execute(4)
        assert pattern.stats.unmasked_failures == 1

    def test_on_reject_none_mode(self):
        pattern = ParallelEvaluation([bad("a"), bad("b")], on_reject="none")
        assert pattern.execute(4) is None

    def test_invalid_on_reject(self):
        with pytest.raises(ValueError):
            ParallelEvaluation([good()], on_reject="explode")

    def test_parallel_billing_is_max_not_sum(self):
        env = SimEnvironment()
        pattern = ParallelEvaluation([good("a", cost=1.0),
                                      good("b", cost=5.0),
                                      good("c", cost=2.0)])
        pattern.execute(1, env=env)
        assert env.clock.now == 5.0

    def test_stats_total_execution_cost_is_sum(self):
        pattern = ParallelEvaluation([good("a", cost=1.0),
                                      good("b", cost=5.0)])
        pattern.execute(1)
        assert pattern.stats.execution_cost == 6.0
        assert pattern.stats.executions == 2

    def test_custom_adjudicator(self):
        pattern = ParallelEvaluation([good("a"), wrong("b")],
                                     adjudicator=UnanimousVoter())
        with pytest.raises(NoMajorityError):
            pattern.execute(1)


class TestParallelSelection:
    def _accept_even_double(self):
        return PredicateAcceptanceTest(lambda args, v: v == args[0] * 2)

    def test_acting_component_wins_when_healthy(self):
        test = self._accept_even_double()
        pattern = ParallelSelection([GuardedUnit(good("acting"), test),
                                     GuardedUnit(good("spare"), test)])
        assert pattern.execute(3) == 6

    def test_spare_takes_over_and_failed_is_disabled(self):
        test = self._accept_even_double()
        acting = bad("acting")
        pattern = ParallelSelection([GuardedUnit(acting, test),
                                     GuardedUnit(good("spare"), test)])
        assert pattern.execute(3) == 6
        assert not acting.enabled
        assert pattern.stats.disabled == 1

    def test_wrong_value_component_detected_by_check(self):
        test = self._accept_even_double()
        pattern = ParallelSelection([GuardedUnit(wrong("acting"), test),
                                     GuardedUnit(good("spare"), test)])
        assert pattern.execute(3) == 6

    def test_all_fail_raises(self):
        test = self._accept_even_double()
        pattern = ParallelSelection([GuardedUnit(bad("a"), test),
                                     GuardedUnit(bad("b"), test)])
        with pytest.raises(AllAlternativesFailedError):
            pattern.execute(3)

    def test_exhausted_components_raise_immediately(self):
        test = self._accept_even_double()
        pattern = ParallelSelection([GuardedUnit(bad("a"), test)])
        with pytest.raises(AllAlternativesFailedError):
            pattern.execute(3)
        with pytest.raises(AllAlternativesFailedError):
            pattern.execute(3)  # disabled; nothing left

    def test_disable_failing_off_keeps_units(self):
        test = self._accept_even_double()
        a = bad("a")
        pattern = ParallelSelection([GuardedUnit(a, test),
                                     GuardedUnit(good("b"), test)],
                                    disable_failing=False)
        pattern.execute(3)
        assert a.enabled

    def test_parallel_billing_is_max(self):
        env = SimEnvironment()
        test = self._accept_even_double()
        pattern = ParallelSelection([GuardedUnit(good("a", cost=2.0), test),
                                     GuardedUnit(good("b", cost=7.0), test)])
        pattern.execute(1, env=env)
        assert env.clock.now == 7.0


class TestSequentialAlternatives:
    def test_primary_suffices(self):
        pattern = SequentialAlternatives([good("p"), good("alt")])
        assert pattern.execute(5) == 10
        assert pattern.stats.executions == 1  # alternates untouched

    def test_alternate_used_on_failure(self):
        pattern = SequentialAlternatives([bad("p"), good("alt")])
        assert pattern.execute(5) == 10
        assert pattern.stats.executions == 2
        assert pattern.stats.masked_failures == 1

    def test_sequential_billing_accumulates(self):
        env = SimEnvironment()
        pattern = SequentialAlternatives([bad("p", cost=3.0),
                                          good("alt", cost=4.0)])
        pattern.execute(5, env=env)
        assert env.clock.now == 7.0

    def test_exhaustion_raises_with_failures(self):
        pattern = SequentialAlternatives([bad("a"), bad("b")])
        with pytest.raises(AllAlternativesFailedError) as info:
            pattern.execute(5)
        assert len(info.value.failures) == 2
        assert all(isinstance(f, BohrbugFailure)
                   for f in info.value.failures)

    def test_rollback_between_attempts(self):
        state = DictState(log=[])

        def dirty_fail(x):
            state["log"].append("dirty")
            raise BohrbugFailure("p failed")

        def clean(x):
            return len(state["log"])

        pattern = SequentialAlternatives(
            [Version("p", impl=dirty_fail), Version("alt", impl=clean)],
            subject=state)
        # The alternate must observe the rolled-back (empty) log.
        assert pattern.execute(1) == 0
        assert pattern.stats.rollbacks == 1

    def test_state_restored_even_on_total_failure(self):
        state = DictState(value=1)

        def corrupt_and_fail(x):
            state["value"] = 666
            raise BohrbugFailure("boom")

        pattern = SequentialAlternatives(
            [Version("a", impl=corrupt_and_fail)], subject=state)
        with pytest.raises(AllAlternativesFailedError):
            pattern.execute(1)
        assert state["value"] == 1

    def test_max_attempts_caps_alternatives(self):
        pattern = SequentialAlternatives([bad("a"), bad("b"), good("c")],
                                         max_attempts=2)
        with pytest.raises(AllAlternativesFailedError):
            pattern.execute(5)

    def test_max_attempts_validated(self):
        with pytest.raises(ValueError):
            SequentialAlternatives([good()], max_attempts=0)

    def test_guarded_units_reject_wrong_values(self):
        test = PredicateAcceptanceTest(lambda args, v: v == args[0] * 2)
        pattern = SequentialAlternatives(
            [GuardedUnit(wrong("w"), test), GuardedUnit(good("g"), test)])
        assert pattern.execute(4) == 8
