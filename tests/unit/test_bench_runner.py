"""Unit tests for the ``repro bench`` runner."""

import json

from repro.cli import main as cli_main
from repro.runtime import bench as bench_mod


class TestDiscovery:
    def test_finds_the_suite(self):
        suite = bench_mod.default_benchmarks_dir()
        paths = bench_mod.discover(suite)
        names = {p.stem for p in paths}
        assert "bench_table1_taxonomy" in names
        assert len(paths) >= 26
        assert paths == sorted(paths)

    def test_quick_subset_exists(self):
        suite = bench_mod.default_benchmarks_dir()
        names = {p.stem for p in bench_mod.discover(suite)}
        assert set(bench_mod.QUICK_BENCHMARKS) <= names


class TestWorkerIdentity:
    def test_workers_1_vs_4_same_tables_and_no_drift(self):
        suite = bench_mod.default_benchmarks_dir()
        only = ["table1", "table2"]
        serial = bench_mod.run_suite(suite, workers=1, only=only)
        pooled = bench_mod.run_suite(suite, workers=4, only=only,
                                     backend="process")
        assert serial["failures"] == [] and pooled["failures"] == []
        assert serial["results_drift"] == []
        assert pooled["results_drift"] == []
        # The rendered artifacts (each benchmark's captured stdout,
        # i.e. its tables) are byte-identical across worker counts.
        assert pooled["outputs"] == serial["outputs"]


class TestDriftDetection:
    def _fake_suite(self, tmp_path, stored):
        (tmp_path / "_common.py").write_text(
            "import pathlib\n"
            "RESULTS_DIR = pathlib.Path(__file__).parent / 'results'\n"
            "def save_result(experiment_id, text):\n"
            "    RESULTS_DIR.mkdir(exist_ok=True)\n"
            "    (RESULTS_DIR / f'{experiment_id}.txt')"
            ".write_text(text + '\\n', encoding='utf-8')\n"
            "    print(text)\n", encoding="utf-8")
        (tmp_path / "bench_fake.py").write_text(
            "from _common import save_result\n"
            "def _experiment():\n"
            "    return 'regenerated table'\n"
            "def test_fake(benchmark):\n"
            "    save_result('FAKE', benchmark(_experiment))\n",
            encoding="utf-8")
        results = tmp_path / "results"
        results.mkdir()
        (results / "FAKE.txt").write_text(stored, encoding="utf-8")

    def test_changed_table_is_reported_as_drift(self, tmp_path):
        self._fake_suite(tmp_path, stored="stale table\n")
        report = bench_mod.run_suite(tmp_path, workers=1)
        assert report["failures"] == []
        assert report["results_drift"] == ["FAKE.txt"]

    def test_matching_table_is_clean(self, tmp_path):
        self._fake_suite(tmp_path, stored="regenerated table\n")
        report = bench_mod.run_suite(tmp_path, workers=1)
        assert report["results_drift"] == []

    def test_drift_fails_the_cli(self, tmp_path, capsys):
        self._fake_suite(tmp_path, stored="stale table\n")
        code = cli_main(["bench", "--benchmarks-dir", str(tmp_path),
                         "--workers", "1",
                         "--json", str(tmp_path / "BENCH.json")])
        assert code == 1
        assert "FAKE.txt" in capsys.readouterr().out


class TestIncrementalStore:
    def _fake_suite(self, tmp_path):
        TestDriftDetection._fake_suite(self, tmp_path,
                                       stored="regenerated table\n")

    def _store(self, tmp_path):
        from repro.runtime.store import ResultStore

        # A fresh instance per run, like consecutive CLI invocations.
        return ResultStore(tmp_path / "store.jsonl", name="bench-test")

    def test_second_run_is_served_from_the_store(self, tmp_path):
        self._fake_suite(tmp_path)
        cold_store = self._store(tmp_path)
        cold = bench_mod.run_suite(tmp_path, workers=1, store=cold_store)
        assert cold["incremental"] is True
        assert cold["benchmarks"][0]["cached"] is False
        assert cold["store"]["served"] == 0
        assert cold_store.stats()["writes"] == 1

        warm_store = self._store(tmp_path)
        warm = bench_mod.run_suite(tmp_path, workers=1, store=warm_store)
        assert warm["benchmarks"][0]["cached"] is True
        assert warm["store"]["served"] == 1
        assert warm_store.stats()["writes"] == 0
        # A served file is not executed, so its table cannot drift, and
        # the stored outcome carries the original captured output.
        assert warm["results_drift"] == []
        assert warm["outputs"] == cold["outputs"]

    def test_editing_the_file_invalidates_its_outcome(self, tmp_path):
        self._fake_suite(tmp_path)
        bench_mod.run_suite(tmp_path, workers=1,
                            store=self._store(tmp_path))
        bench = tmp_path / "bench_fake.py"
        bench.write_text(bench.read_text(encoding="utf-8")
                         + "# edited\n", encoding="utf-8")
        store = self._store(tmp_path)
        report = bench_mod.run_suite(tmp_path, workers=1, store=store)
        assert report["benchmarks"][0]["cached"] is False
        assert store.stats()["writes"] == 1

    def test_failures_are_never_stored(self, tmp_path):
        (tmp_path / "bench_broken.py").write_text(
            "def test_broken(benchmark):\n"
            "    raise RuntimeError('injected')\n", encoding="utf-8")
        for _ in range(2):
            store = self._store(tmp_path)
            report = bench_mod.run_suite(tmp_path, workers=1,
                                         store=store)
            assert report["failures"] == ["bench_broken"]
            assert report["benchmarks"][0]["cached"] is False
            assert store.stats()["writes"] == 0

    def test_without_a_store_nothing_is_incremental(self, tmp_path):
        self._fake_suite(tmp_path)
        report = bench_mod.run_suite(tmp_path, workers=1)
        assert report["incremental"] is False
        assert report["store"] is None


class TestHarnessReport:
    def test_bench_json_is_well_formed(self, tmp_path, capsys):
        report_path = tmp_path / "BENCH_harness.json"
        code = cli_main(["bench", "--only", "table1", "--workers", "2",
                         "--json", str(report_path)])
        assert code == 0
        document = json.loads(report_path.read_text(encoding="utf-8"))
        assert document["schema"] == "repro-bench-harness/v2"
        assert document["host"]["cpu_count"] >= 1
        suite = document["suite"]
        assert "schema" not in suite and "host" not in suite
        assert suite["workers"] == 2
        assert suite["failures"] == []
        assert suite["results_drift"] == []
        entries = {entry["name"] for entry in suite["benchmarks"]}
        assert entries == {"bench_table1_taxonomy"}
        for entry in suite["benchmarks"]:
            assert entry["ok"] and entry["seconds"] >= 0
        assert suite["serial_seconds"] >= 0
        assert suite["wall_seconds"] > 0
        assert suite["speedup_vs_serial"] > 0
        out = capsys.readouterr().out
        assert "repro bench" in out and "speedup" in out

    def test_sections_survive_regeneration(self, tmp_path):
        # A foreign section (H6's shard_resume figures) written before
        # a suite run is still there afterwards — the sectioned RMW
        # never clobbers the whole file.
        report_path = tmp_path / "BENCH_harness.json"
        bench_mod.update_harness_json(report_path, "shard_resume",
                                      {"resume_ratio": 0.4})
        code = cli_main(["bench", "--only", "table1", "--workers", "1",
                         "--json", str(report_path)])
        assert code == 0
        document = json.loads(report_path.read_text(encoding="utf-8"))
        assert document["shard_resume"] == {"resume_ratio": 0.4}
        assert document["suite"]["failures"] == []

    def test_v1_document_upgrades_to_v2(self, tmp_path):
        # A flat v1 report left by an older runner becomes the "suite"
        # section on the first sectioned update.
        report_path = tmp_path / "BENCH_harness.json"
        legacy = {"schema": "repro-bench-harness/v1",
                  "host": {"cpu_count": 4},
                  "workers": 3, "failures": [], "benchmarks": []}
        report_path.write_text(json.dumps(legacy), encoding="utf-8")
        document = bench_mod.update_harness_json(
            report_path, "shard_resume", {"resume_ratio": 0.4})
        assert document["schema"] == "repro-bench-harness/v2"
        assert document["suite"]["workers"] == 3
        assert "schema" not in document["suite"]
        assert document["shard_resume"] == {"resume_ratio": 0.4}
        on_disk = json.loads(report_path.read_text(encoding="utf-8"))
        assert on_disk == json.loads(json.dumps(document))

    def test_corrupt_document_is_replaced(self, tmp_path):
        report_path = tmp_path / "BENCH_harness.json"
        report_path.write_text("{not json", encoding="utf-8")
        document = bench_mod.update_harness_json(report_path, "suite",
                                                 {"failures": []})
        assert document["schema"] == "repro-bench-harness/v2"
        assert document["suite"] == {"failures": []}

    def test_timeout_falls_back_to_parent_run(self, tmp_path):
        # A bench that sleeps past the deadline forces the
        # retry-once-serial path; the run still completes with correct
        # tables and the pool records the timeout.
        (tmp_path / "bench_slow.py").write_text(
            "import time\n"
            "def test_slow(benchmark):\n"
            "    benchmark(time.sleep, 0.3)\n", encoding="utf-8")
        report = bench_mod.run_suite(tmp_path, workers=2,
                                     backend="thread", timeout=0.05)
        assert report["failures"] == []
        assert report["pool"]["timeouts"] == 1
        assert report["pool"]["serial_retries"] == 1
