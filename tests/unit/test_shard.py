"""Unit tests for the sharded, resumable campaign engine."""

import json
import os
import subprocess
import sys

import pytest

from repro import observe
from repro.faults.development import Bohrbug, Heisenbug, InputRegion
from repro.harness.campaign import FaultCampaign
from repro.harness.shard import (ShardPlan, ShardedCampaign,
                                 campaign_fingerprint, pairs_digest)
from repro.runtime.store import ResultStore

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


# -- module-level (picklable) campaign pieces for the process backend --


def oracle(x):
    return x + 1


def retry_protector(faulty, env):
    def protected(x):
        last = None
        for _ in range(4):
            try:
                return faulty(x, env=env)
            except Exception as exc:
                last = exc
        raise last
    return protected


def make_bohrbug():
    return Bohrbug("b", region=InputRegion(0, 10 ** 9))


def make_heisenbug():
    return Heisenbug("h", probability=0.5)


def make_quiet():
    return Heisenbug("quiet", probability=0.0)


def build_campaign(requests=30, seed=3, workers=1, backend="auto"):
    return FaultCampaign(
        {"retry": retry_protector},
        {"bohrbug": make_bohrbug, "heisenbug": make_heisenbug,
         "none": make_quiet},
        oracle=oracle, requests=requests, seed=seed,
        workers=workers, backend=backend)


def snapshot_bytes(snapshot):
    return json.dumps(snapshot, sort_keys=True, default=str)


class TestShardPlan:
    def test_partition_is_exact_and_deterministic(self):
        plan_a = ShardPlan.for_campaign(build_campaign(), 4)
        plan_b = ShardPlan.for_campaign(build_campaign(), 4)
        assert plan_a == plan_b
        assert sum(len(s) for s in plan_a.shards) == 6
        flattened = tuple(p for s in plan_a.shards for p in s)
        assert flattened == plan_a.ordered
        assert sorted(flattened) == sorted(build_campaign().pairs())

    def test_ragged_remainder_is_front_loaded(self):
        plan = ShardPlan.build([("p", f"f{i}") for i in range(16)], 10)
        sizes = [len(s) for s in plan.shards]
        assert sizes == [2, 2, 2, 2, 2, 2, 1, 1, 1, 1]
        # "Half the shards" carries more than half the cells — the
        # property the H6 resume-speed bound rests on.
        assert sum(sizes[:5]) * 2 > 16

    def test_shard_count_is_clamped_to_grid(self):
        plan = ShardPlan.for_campaign(build_campaign(), 100)
        assert len(plan) == 6
        assert all(len(s) == 1 for s in plan.shards)
        assert len(ShardPlan.for_campaign(build_campaign(), 1)) == 1

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            ShardPlan.build([], 2)
        with pytest.raises(ValueError):
            ShardPlan.build([("p", "f")], 0)

    def test_plan_order_is_hashseed_stable(self):
        script = (
            "from repro.harness.shard import ShardPlan\n"
            "pairs = [(p, f) for p in ('retry', 'unprotected')\n"
            "         for f in ('bohrbug', 'heisenbug', 'none')]\n"
            "print(ShardPlan.build(pairs, 4).shards)\n"
        )
        outputs = set()
        for hash_seed in ("0", "1", "31337"):
            env = dict(os.environ, PYTHONPATH=SRC,
                       PYTHONHASHSEED=hash_seed)
            result = subprocess.run(
                [sys.executable, "-c", script], env=env,
                capture_output=True, text=True, check=True)
            outputs.add(result.stdout)
        assert len(outputs) == 1


class TestShardedExecution:
    def test_serial_sharded_matches_plain_run(self):
        reference = build_campaign().run()
        for shards in (1, 2, 4, 6):
            sharded = ShardedCampaign(build_campaign(), shards=shards)
            assert sharded.run() == reference
            assert sharded.stats.shards_executed == len(sharded.plan)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_pooled_sharded_matches_plain_run(self, backend):
        reference = build_campaign().run()
        sharded = ShardedCampaign(
            build_campaign(workers=3, backend=backend), shards=4)
        assert sharded.run() == reference
        assert sharded.campaign.pool_stats is not None

    def test_run_shards_streams_in_plan_order(self):
        sharded = ShardedCampaign(build_campaign(), shards=3)
        outcomes = list(sharded.run_shards())
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert all(not o.served for o in outcomes)
        for outcome in outcomes:
            assert [(c.protector, c.fault) for c in outcome.cells] \
                == list(outcome.pairs)

    def test_max_shards_truncates_cleanly(self):
        sharded = ShardedCampaign(build_campaign(), shards=6,
                                  max_shards=2)
        cells = sharded.run()
        assert len(cells) == 2
        assert sharded.stats.truncated
        assert sharded.stats.shards_executed == 2
        with pytest.raises(ValueError):
            ShardedCampaign(build_campaign(), shards=2, max_shards=0)


class TestCheckpointResume:
    def _checkpointed(self, tmp_path, max_shards=None, resume=False,
                      requests=30):
        store = ResultStore(tmp_path / "ck.jsonl", name="ck",
                            quiet=True)
        return ShardedCampaign(build_campaign(requests=requests),
                               shards=4, store=store, resume=resume,
                               max_shards=max_shards)

    def test_interrupted_then_resumed_is_byte_identical(self, tmp_path):
        with observe.session():
            interrupted = self._checkpointed(tmp_path, max_shards=2)
            interrupted.run()
            assert interrupted.stats.shards_checkpointed == 2
        with observe.session() as tel:
            resumed = self._checkpointed(tmp_path, resume=True)
            resumed_cells = resumed.run()
            resumed_snapshot = snapshot_bytes(tel.snapshot())
        with observe.session() as tel:
            cold = ShardedCampaign(build_campaign(), shards=4)
            cold_cells = cold.run()
            cold_snapshot = snapshot_bytes(tel.snapshot())
        assert resumed.stats.shards_served == 2
        assert resumed.stats.shards_executed == 2
        assert resumed_cells == cold_cells
        assert resumed_snapshot == cold_snapshot

    def test_full_resume_executes_nothing(self, tmp_path):
        self._checkpointed(tmp_path).run()
        resumed = self._checkpointed(tmp_path, resume=True)
        cells = resumed.run()
        assert resumed.stats.shards_executed == 0
        assert resumed.stats.shards_served == 4
        assert cells == build_campaign().run()

    def test_resume_without_checkpoints_executes_everything(
            self, tmp_path):
        resumed = self._checkpointed(tmp_path, resume=True)
        resumed.run()
        assert resumed.stats.shards_served == 0
        assert resumed.stats.shards_executed == 4

    def test_checkpoint_store_is_telemetry_quiet(self, tmp_path):
        with observe.session() as tel:
            self._checkpointed(tmp_path, max_shards=2).run()
            self._checkpointed(tmp_path, resume=True).run()
            snapshot = tel.snapshot()
        topics = {event[1] for event in
                  snapshot["events"]["history"]} \
            if isinstance(snapshot["events"], dict) \
            and "history" in snapshot["events"] else set()
        rendered = snapshot_bytes(snapshot)
        assert "store.hit" not in rendered
        assert "store.write" not in rendered
        assert "repro_runtime_store" not in rendered
        assert "repro_cache" not in rendered
        assert topics == set() or "store.hit" not in topics

    def test_workload_change_invalidates_checkpoints(self, tmp_path):
        self._checkpointed(tmp_path).run()
        resumed = self._checkpointed(tmp_path, resume=True,
                                     requests=31)
        resumed.run()
        assert resumed.stats.shards_served == 0
        assert resumed.stats.shards_executed == 4

    def test_capture_mode_is_part_of_the_key(self, tmp_path):
        # Checkpoints written without telemetry carry no snapshots; a
        # later telemetry-enabled resume must not serve them.
        self._checkpointed(tmp_path).run()
        with observe.session():
            resumed = self._checkpointed(tmp_path, resume=True)
            resumed.run()
        assert resumed.stats.shards_served == 0

    def test_malformed_record_degrades_to_execution(self, tmp_path):
        # Poison the log with records under the right keys but the
        # wrong shape (hand-edited log, version skew): the validity
        # gate must re-execute, not crash or serve garbage.
        poisoned = self._checkpointed(tmp_path)
        for index in range(len(poisoned.plan)):
            poisoned.store.put(poisoned.shard_key(index, False),
                               {"schema": "bogus"}, task="tamper")
        resumed = self._checkpointed(tmp_path, resume=True)
        cells = resumed.run()
        assert resumed.stats.shards_served == 0
        assert resumed.stats.shards_executed == 4
        assert cells == build_campaign().run()

    def test_cells_are_individually_addressed_too(self, tmp_path):
        # A later *unsharded* --store run is served from the same log.
        sharded = self._checkpointed(tmp_path)
        sharded.run()
        campaign = build_campaign()
        campaign.store = ResultStore(tmp_path / "ck.jsonl", name="ck")
        cells = campaign.run()
        assert cells == build_campaign().run()
        assert campaign.store.hits >= 6


class TestFingerprint:
    def test_fingerprint_covers_workload_and_seed(self):
        base = campaign_fingerprint(build_campaign())
        assert campaign_fingerprint(build_campaign()) == base
        assert campaign_fingerprint(
            build_campaign(requests=31)) != base
        assert campaign_fingerprint(build_campaign(seed=4)) != base

    def test_fingerprint_ignores_execution_knobs(self):
        base = campaign_fingerprint(build_campaign())
        assert campaign_fingerprint(
            build_campaign(workers=8, backend="thread")) == base

    def test_pairs_digest_is_order_sensitive(self):
        pairs = [("a", "x"), ("b", "y")]
        assert pairs_digest(pairs) == pairs_digest(tuple(pairs))
        assert pairs_digest(pairs) != pairs_digest(pairs[::-1])
