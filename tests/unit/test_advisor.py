"""Unit tests for the taxonomy advisor."""

import pytest

import repro.techniques  # noqa: F401 - populates the registry
from repro.taxonomy.advisor import (
    BUDGET_LOW,
    addresses,
    recommend,
    techniques_for,
)
from repro.taxonomy.dimensions import (
    AdjudicatorTiming,
    FaultClass,
    Intention,
    RedundancyType,
)
from repro.taxonomy.paper import paper_entry


class TestAddresses:
    def test_specific_class_matches(self):
        assert addresses(paper_entry("Rejuvenation"), FaultClass.HEISENBUG)
        assert addresses(paper_entry("Process replicas"),
                         FaultClass.MALICIOUS)

    def test_development_covers_both_refinements(self):
        nvp = paper_entry("N-version programming")
        assert addresses(nvp, FaultClass.BOHRBUG)
        assert addresses(nvp, FaultClass.HEISENBUG)
        assert addresses(nvp, FaultClass.DEVELOPMENT)

    def test_specific_does_not_generalise(self):
        rejuvenation = paper_entry("Rejuvenation")
        assert not addresses(rejuvenation, FaultClass.BOHRBUG)
        assert not addresses(rejuvenation, FaultClass.MALICIOUS)


class TestTechniquesFor:
    def test_malicious_set_matches_the_paper(self):
        names = {e.name for e in techniques_for(FaultClass.MALICIOUS)}
        assert names == {"Wrappers", "Data diversity for security",
                         "Process replicas"}

    def test_heisenbug_includes_env_techniques(self):
        names = {e.name for e in techniques_for(FaultClass.HEISENBUG)}
        assert "Rejuvenation" in names
        assert "Checkpoint-recovery" in names
        assert "Reboot and micro-reboot" in names
        # ...and every generic development technique.
        assert "N-version programming" in names

    def test_filters_compose(self):
        names = {e.name for e in techniques_for(
            FaultClass.HEISENBUG,
            intention=Intention.OPPORTUNISTIC,
            rtype=RedundancyType.ENVIRONMENT)}
        assert names == {"Checkpoint-recovery", "Reboot and micro-reboot"}

    def test_preventive_filter(self):
        names = {e.name for e in techniques_for(
            FaultClass.HEISENBUG, timing=AdjudicatorTiming.PREVENTIVE)}
        assert names == {"Rejuvenation"}


class TestRecommend:
    def test_ranked_and_rationalised(self):
        recommendations = recommend(FaultClass.MALICIOUS)
        assert recommendations
        scores = [r.score for r in recommendations]
        assert scores == sorted(scores, reverse=True)
        assert all(r.rationale for r in recommendations)

    def test_specific_beats_generic(self):
        recommendations = recommend(FaultClass.HEISENBUG)
        ranked = [r.entry.name for r in recommendations]
        # Heisenbug-specific techniques outrank generic development ones.
        assert ranked.index("Rejuvenation") < ranked.index(
            "N-version programming")

    def test_low_budget_prefers_opportunistic(self):
        recommendations = recommend(FaultClass.HEISENBUG,
                                    budget=BUDGET_LOW)
        top = recommendations[0].entry
        assert top.intention is Intention.OPPORTUNISTIC

    def test_no_adjudicator_design_prefers_implicit_or_preventive(self):
        recommendations = recommend(FaultClass.BOHRBUG,
                                    can_design_adjudicator=False)
        top = recommendations[0].entry
        assert (top.adjudicator.value in ("implicit",)
                or top.timing is AdjudicatorTiming.PREVENTIVE)

    def test_budget_validated(self):
        with pytest.raises(ValueError):
            recommend(FaultClass.BOHRBUG, budget="infinite")

    def test_all_recommendations_address_the_fault(self):
        for fault in (FaultClass.BOHRBUG, FaultClass.HEISENBUG,
                      FaultClass.MALICIOUS, FaultClass.DEVELOPMENT):
            for recommendation in recommend(fault):
                assert addresses(recommendation.entry, fault)
