"""Unit tests for the telemetry snapshot/merge protocol."""

import pickle

import pytest

from repro import observe
from repro.observe import EventBus, MetricsRegistry, Telemetry, Tracer


def _tick_clock():
    class Ticks:
        def __init__(self):
            self._now = 0.0

        @property
        def now(self):
            self._now += 1.0
            return self._now

    return Ticks()


class TestMetricsSnapshot:
    def test_snapshot_is_picklable_and_plain(self):
        registry = MetricsRegistry()
        registry.inc("requests_total", 3, technique="nvp")
        registry.set_gauge("depth", 2.0)
        registry.observe("latency", 1.5)
        snapshot = registry.snapshot()
        assert snapshot["schema"] == "repro-metrics-snapshot/v1"
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot

    def test_snapshot_is_insertion_order_independent(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("x_total", 1)
        a.inc("y_total", 2)
        b.inc("y_total", 2)
        b.inc("x_total", 1)
        assert a.snapshot() == b.snapshot()

    def test_merge_adds_counters_and_gauges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("requests_total", 3, technique="nvp")
        a.set_gauge("depth", 2.0)
        b.inc("requests_total", 4, technique="nvp")
        b.set_gauge("depth", 1.0)
        a.merge(b.snapshot())
        assert a.value("requests_total", technique="nvp") == 7
        assert a.value("depth") == 3.0

    def test_merge_combines_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("latency", 1.0)
        b.observe("latency", 100.0)
        a.merge(b.snapshot())
        hist = a.histogram("latency")
        assert hist.count == 2
        assert hist.sum == 101.0
        assert hist.min == 1.0 and hist.max == 100.0

    def test_merge_into_empty_reproduces_the_source(self):
        source, target = MetricsRegistry(), MetricsRegistry()
        source.inc("requests_total", 5, technique="rb")
        source.observe("latency", 2.0)
        target.merge(source.snapshot())
        assert target.snapshot() == source.snapshot()
        assert target.render_prometheus() == source.render_prometheus()

    def test_merge_rejects_bucket_layout_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("latency", buckets=(1.0, 2.0)).observe(1.5)
        b.histogram("latency", buckets=(5.0, 10.0)).observe(6.0)
        with pytest.raises(ValueError, match="bucket layout"):
            a.merge(b.snapshot())

    def test_merge_rejects_kind_conflict(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("value", 1)
        b.set_gauge("value", 1.0)
        with pytest.raises(ValueError):
            a.merge(b.snapshot())

    def test_exclude_prefix_drops_series(self):
        registry = MetricsRegistry()
        registry.inc("repro_runtime_tasks_total", 4, backend="thread")
        registry.inc("workload_total", 2)
        flat = registry.as_dict(exclude=("repro_runtime_",))
        assert flat == {"workload_total": 2}
        text = registry.render_prometheus(exclude=("repro_runtime_",))
        assert "repro_runtime" not in text
        assert "workload_total 2" in text


class TestHistogramQuantile:
    def test_quantiles_are_monotone_and_clamped(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0, 4.0, 100.0):
            registry.observe("latency", value)
        hist = registry.histogram("latency")
        p50, p95, p99 = (hist.quantile(q) for q in (0.5, 0.95, 0.99))
        assert p50 <= p95 <= p99
        assert hist.min <= p50
        assert p99 <= hist.max

    def test_empty_histogram_quantile_is_zero(self):
        hist = MetricsRegistry().histogram("latency")
        assert hist.quantile(0.5) == 0.0

    def test_quantile_rejects_out_of_range(self):
        hist = MetricsRegistry().histogram("latency")
        with pytest.raises(ValueError):
            hist.quantile(1.5)


class TestTracerSnapshot:
    def test_merge_renumbers_ids_and_preserves_tree(self):
        parent = Tracer()
        with parent.span("before"):
            pass
        worker = Tracer()
        with worker.span("outer") as outer:
            with worker.span("inner"):
                pass
        parent.merge(worker.snapshot())
        names = [s.name for s in parent.spans]
        assert names == ["before", "outer", "inner"]
        merged_outer, merged_inner = parent.spans[1], parent.spans[2]
        assert merged_inner.parent_id == merged_outer.span_id
        assert merged_outer.parent_id is None
        assert outer.attrs == merged_outer.attrs
        ids = [s.span_id for s in parent.spans]
        assert len(set(ids)) == len(ids)

    def test_merge_reproduces_serial_recording(self):
        serial = Tracer()
        for name in ("a", "b"):
            with serial.span(name, cost=1.0):
                pass
        merged = Tracer()
        for name in ("a", "b"):
            worker = Tracer()
            with worker.span(name, cost=1.0):
                pass
            merged.merge(worker.snapshot())
        assert ([s.to_dict() for s in merged.spans]
                == [s.to_dict() for s in serial.spans])

    def test_merge_respects_capacity(self):
        parent = Tracer(capacity=1)
        with parent.span("kept"):
            pass
        worker = Tracer()
        with worker.span("dropped"):
            pass
        parent.merge(worker.snapshot())
        assert [s.name for s in parent.spans] == ["kept"]
        assert parent.started == 2


class TestEventBusSnapshot:
    def test_merge_redelivers_to_subscribers(self):
        worker = EventBus()
        worker.publish("unit.outcome", pattern="nvp", ok=True)
        worker.publish("reboot", scope="micro", downtime=2.0)
        parent = EventBus()
        seen = []
        parent.subscribe("unit.outcome", seen.append)
        parent.merge(worker.snapshot())
        assert [e.topic for e in seen] == ["unit.outcome"]
        assert seen[0].payload == {"pattern": "nvp", "ok": True}
        assert parent.counts == {"unit.outcome": 1, "reboot": 1}
        assert parent.published == 2

    def test_merge_shifts_sequence_numbers(self):
        parent, worker = EventBus(), EventBus()
        parent.publish("local")
        worker.publish("remote")
        parent.merge(worker.snapshot())
        assert [e.seq for e in parent.history] == [0, 1]

    def test_counts_merge_commutes(self):
        a, b = EventBus(), EventBus()
        a.publish("x")
        a.publish("y")
        b.publish("y")
        left, right = EventBus(), EventBus()
        left.merge(a.snapshot())
        left.merge(b.snapshot())
        right.merge(b.snapshot())
        right.merge(a.snapshot())
        assert left.counts == right.counts
        assert left.published == right.published


class TestTelemetrySnapshot:
    def test_bundle_round_trip(self):
        source = Telemetry(clock=_tick_clock())
        with source.span("technique.execute", technique="nvp"):
            source.count("requests_total")
        source.publish("unit.outcome", pattern="nvp", ok=True)
        snapshot = source.snapshot()
        assert snapshot["schema"] == "repro-telemetry-snapshot/v1"
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot
        target = Telemetry(clock=_tick_clock())
        target.merge(snapshot)
        assert target.metrics.value("requests_total") == 1
        assert target.bus.counts == {"unit.outcome": 1}
        assert [s.name for s in target.tracer.spans] \
            == ["technique.execute"]


class TestLocalSession:
    def test_local_session_shadows_global(self):
        with observe.session() as outer:
            with observe.local_session() as local:
                assert observe.current() is local
                observe.current().count("inner_total")
            assert observe.current() is outer
        assert outer.metrics.value("inner_total") == 0

    def test_local_session_is_thread_private(self):
        import threading

        results = {}

        def probe():
            results["other"] = observe.current()

        with observe.local_session():
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert results["other"] is not observe.current() or \
            not results["other"].enabled

    def test_session_nests_inside_local_session(self):
        with observe.local_session() as chunk:
            with observe.session() as trial:
                assert observe.current() is trial
            assert observe.current() is chunk
        # The global session was never touched.
        assert not observe.enabled()

    def test_install_inside_local_session_stays_local(self):
        global_before = observe.current()
        with observe.local_session():
            replacement = observe.Telemetry()
            observe.install(replacement)
            assert observe.current() is replacement
        assert observe.current() is global_before
