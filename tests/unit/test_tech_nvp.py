"""Unit tests for N-version programming."""

import pytest

from repro.adjudicators.voting import MedianVoter
from repro.analysis.reliability import vote_reliability
from repro.components.library import diverse_versions
from repro.components.version import Version
from repro.environment import SimEnvironment
from repro.exceptions import NoMajorityError, SimulatedFailure
from repro.faults.development import Bohrbug, InputRegion
from repro.taxonomy.paper import paper_entry
from repro.techniques.nvp import NVersionProgramming


def oracle(x):
    return x * x


def crashing_version(name):
    return Version(name, impl=oracle,
                   faults=[Bohrbug(f"{name}-bug",
                                   region=InputRegion(0, 10 ** 9))])


class TestConstruction:
    def test_taxonomy_matches_paper(self):
        assert NVersionProgramming.TAXONOMY.matches(
            paper_entry("N-version programming"))

    def test_needs_at_least_two_versions(self):
        with pytest.raises(ValueError):
            NVersionProgramming([Version("v", impl=oracle)])

    def test_tolerable_failures_rule(self):
        nvp = NVersionProgramming.from_oracle(oracle, 7, 0.0)
        assert nvp.n == 7
        assert nvp.tolerable_failures == 3


class TestVoting:
    def test_masks_up_to_k_crashes(self):
        # 5 versions, 2 crashing: still a 3-vote majority.
        versions = [Version(f"g{i}", impl=oracle) for i in range(3)]
        versions += [crashing_version(f"c{i}") for i in range(2)]
        nvp = NVersionProgramming(versions)
        assert nvp.execute(6) == 36
        assert nvp.stats.masked_failures == 2

    def test_k_plus_one_failures_defeat_the_vote(self):
        versions = [Version(f"g{i}", impl=oracle) for i in range(2)]
        versions += [crashing_version(f"c{i}") for i in range(3)]
        nvp = NVersionProgramming(versions)
        with pytest.raises(NoMajorityError):
            nvp.execute(6)

    def test_common_wrong_value_wins_vote(self):
        # The Brilliant et al. hazard: agreeing wrong versions outvote
        # the correct minority — the vote *accepts* a wrong answer.
        wrong = [Version(f"w{i}", impl=lambda x: -1) for i in range(3)]
        right = [Version(f"r{i}", impl=oracle) for i in range(2)]
        nvp = NVersionProgramming(wrong + right)
        assert nvp.execute(5) == -1

    def test_median_voter_variant(self):
        versions = [Version("a", impl=lambda x: float(x)),
                    Version("b", impl=lambda x: float(x)),
                    Version("c", impl=lambda x: 1e9)]
        nvp = NVersionProgramming(versions, voter=MedianVoter())
        assert nvp.execute(3) == 3.0


class TestEmpiricalReliability:
    def test_matches_binomial_prediction(self):
        n, p = 5, 0.2
        nvp = NVersionProgramming.from_oracle(oracle, n, p, seed=11)
        trials = 3000
        correct = 0
        for x in range(trials):
            try:
                if nvp.execute(x) == oracle(x):
                    correct += 1
            except NoMajorityError:
                pass
        predicted = vote_reliability(n, p)
        assert correct / trials == pytest.approx(predicted, abs=0.03)

    def test_outperforms_single_version(self):
        p = 0.2
        nvp = NVersionProgramming.from_oracle(oracle, 5, p, seed=3)
        single = diverse_versions(oracle, 1, p, seed=99)[0]
        trials = 2000
        nvp_ok = single_ok = 0
        for x in range(trials):
            try:
                nvp_ok += nvp.execute(x) == oracle(x)
            except NoMajorityError:
                pass
            try:
                single_ok += single.execute(x) == oracle(x)
            except SimulatedFailure:
                pass
        assert nvp_ok > single_ok


class TestCosts:
    def test_every_request_runs_all_versions(self):
        nvp = NVersionProgramming.from_oracle(oracle, 5, 0.0)
        for x in range(10):
            nvp.execute(x)
        assert nvp.stats.executions == 50

    def test_env_billed_parallel_cost(self):
        env = SimEnvironment()
        nvp = NVersionProgramming.from_oracle(oracle, 5, 0.0)
        nvp.execute(1, env=env)
        assert env.clock.now == 1.0  # max of equal unit costs, not 5

    def test_cost_ledger_design_cost(self):
        nvp = NVersionProgramming.from_oracle(oracle, 5, 0.0)
        nvp.execute(1)
        ledger = nvp.cost_ledger(correct=1)
        assert ledger.design_cost == 500.0
        assert ledger.adjudicator_design_cost == 0.0  # implicit voter
        report = ledger.report("NVP")
        assert report.executions_per_request == 5.0
        assert report.reliability == 1.0
