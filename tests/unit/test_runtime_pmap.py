"""Unit tests for the deterministic parallel map."""

import time

import pytest

from repro import observe
from repro.runtime.pmap import BACKENDS, ParallelMap, parallel_map


def square(x):
    return x * x


def sleepy(x):
    """Sleeps long only for item 3 (timeout-path probe)."""
    if x == 3:
        time.sleep(0.3)
    return x * 10


def boom(x):
    if x == 2:
        raise ValueError("boom on 2")
    return x


class TestValidation:
    def test_backend_names(self):
        assert set(BACKENDS) == {"auto", "serial", "thread", "process"}
        with pytest.raises(ValueError):
            ParallelMap(backend="gpu")

    def test_rejects_bad_options(self):
        with pytest.raises(ValueError):
            ParallelMap(fallback="process")
        with pytest.raises(ValueError):
            ParallelMap(chunk_size=0)
        with pytest.raises(ValueError):
            ParallelMap(timeout=0)


class TestOrderedGather:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_results_in_submission_order(self, backend):
        items = list(range(23))
        pool = ParallelMap(workers=4, backend=backend, chunk_size=3)
        assert pool.map(square, items) == [square(i) for i in items]

    def test_empty_items(self):
        pool = ParallelMap(workers=4, backend="process")
        assert pool.map(square, []) == []
        assert pool.stats.tasks == 0

    def test_chunk_accounting(self):
        pool = ParallelMap(workers=3, backend="thread", chunk_size=2)
        pool.map(square, range(11))
        assert pool.stats.chunks == 6
        assert pool.stats.tasks == 11

    def test_bounded_in_flight_still_complete(self):
        pool = ParallelMap(workers=2, backend="thread", chunk_size=1,
                           max_in_flight=2)
        assert pool.map(square, range(20)) == [square(i)
                                               for i in range(20)]


class TestBackendResolution:
    def test_workers_one_is_serial(self):
        pool = ParallelMap(workers=1, backend="auto")
        pool.map(square, range(5))
        assert pool.stats.backend == "serial"

    def test_auto_picks_process_for_picklable_tasks(self):
        pool = ParallelMap(workers=2, backend="auto")
        pool.map(square, range(8))
        assert pool.stats.backend == "process"

    def test_auto_falls_back_to_thread_for_closures(self):
        offset = 7
        pool = ParallelMap(workers=2, backend="auto")
        out = pool.map(lambda x: x + offset, range(8))
        assert out == [x + 7 for x in range(8)]
        assert pool.stats.backend == "thread"

    def test_serial_fallback_option(self):
        pool = ParallelMap(workers=2, backend="auto", fallback="serial")
        out = pool.map(lambda x: -x, range(4))
        assert out == [0, -1, -2, -3]
        assert pool.stats.backend == "serial"


class TestFallbackPaths:
    def test_timeout_retries_chunk_serially(self):
        pool = ParallelMap(workers=2, backend="thread", chunk_size=1,
                           timeout=0.05)
        out = pool.map(sleepy, range(5))
        assert out == [x * 10 for x in range(5)]
        assert pool.stats.timeouts == 1
        assert pool.stats.serial_retries == 1

    def test_task_error_propagates_after_one_serial_retry(self):
        pool = ParallelMap(workers=2, backend="thread", chunk_size=1)
        with pytest.raises(ValueError, match="boom on 2"):
            pool.map(boom, range(4))
        assert pool.stats.serial_retries == 1

    def test_unpicklable_work_on_explicit_process_degrades_serially(self):
        # Forcing the process backend onto a closure cannot ship the
        # task to workers; every chunk falls back to the parent and the
        # results stay correct.
        pool = ParallelMap(workers=2, backend="process", chunk_size=2)
        out = pool.map(lambda x: x + 1, range(6))
        assert out == [1, 2, 3, 4, 5, 6]
        assert pool.stats.serial_retries == pool.stats.chunks


class TestDroppedSnapshots:
    def test_timed_out_captured_chunk_drops_its_snapshot(self):
        with observe.session() as tel:
            pool = ParallelMap(workers=2, backend="thread", chunk_size=1,
                               timeout=0.05)
            out = pool.map(sleepy, range(5))
        assert out == [x * 10 for x in range(5)]
        assert pool.stats.captured_chunks == 5
        assert pool.stats.dropped_snapshots == 1
        assert tel.metrics.value("repro_runtime_dropped_snapshots_total",
                                 backend="thread") == 1.0

    def test_failed_captured_chunk_drops_its_snapshot(self):
        with observe.session():
            pool = ParallelMap(workers=2, backend="thread", chunk_size=1)
            with pytest.raises(ValueError, match="boom on 2"):
                pool.map(boom, range(4))
        assert pool.stats.dropped_snapshots == 1
        assert pool.stats.serial_retries == 1

    def test_clean_captured_run_drops_nothing(self):
        with observe.session() as tel:
            pool = ParallelMap(workers=2, backend="thread", chunk_size=2)
            pool.map(square, range(6))
        assert pool.stats.captured_chunks == 3
        assert pool.stats.dropped_snapshots == 0
        # The zero counter is not emitted at all.
        assert tel.metrics.value("repro_runtime_dropped_snapshots_total",
                                 backend="thread") == 0.0

    def test_uncaptured_timeouts_do_not_count_as_drops(self):
        pool = ParallelMap(workers=2, backend="thread", chunk_size=1,
                           timeout=0.05)
        pool.map(sleepy, range(5))
        assert pool.stats.timeouts == 1
        assert pool.stats.captured_chunks == 0
        assert pool.stats.dropped_snapshots == 0


class TestPerCallExecutor:
    def test_reuse_false_joins_a_private_executor(self):
        from repro.runtime.pool import pool_stats, shutdown_pools

        shutdown_pools()
        pool = ParallelMap(workers=2, backend="thread", reuse=False)
        assert pool.map(square, range(10)) == [square(i)
                                               for i in range(10)]
        assert pool.map(square, range(10)) == [square(i)
                                               for i in range(10)]
        # No registry entry was created, and nothing counts as a reuse.
        assert pool.stats.pool_reuses == 0
        assert pool_stats() == []


class TestIncrementalMap:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_chunks_arrive_in_submission_order(self, backend):
        pool = ParallelMap(workers=3, backend=backend, chunk_size=4)
        gathered = []
        for chunk in pool.imap(square, range(14)):
            gathered.append(list(chunk))
        assert [len(c) for c in gathered] == [4, 4, 4, 2]
        flat = [value for chunk in gathered for value in chunk]
        assert flat == [square(i) for i in range(14)]
        assert pool.stats.chunks == 4

    def test_serial_backend_yields_one_chunk(self):
        pool = ParallelMap(workers=1, backend="auto")
        chunks = list(pool.imap(square, range(7)))
        assert chunks == [[square(i) for i in range(7)]]
        assert pool.stats.chunks == 1

    def test_empty_items_yield_nothing(self):
        pool = ParallelMap(workers=2, backend="thread")
        assert list(pool.imap(square, [])) == []
        assert pool.stats.chunks == 0

    def test_early_close_is_clean(self):
        pool = ParallelMap(workers=2, backend="thread", chunk_size=2)
        stream = pool.imap(square, range(12))
        first = next(stream)
        stream.close()
        assert first == [0, 1]
        # A fresh map on the same pool still works after the abort.
        assert pool.map(square, range(4)) == [0, 1, 4, 9]

    def test_imap_rejects_bad_chunk_size(self):
        pool = ParallelMap(workers=2, backend="thread")
        with pytest.raises(ValueError):
            list(pool.imap(square, range(4), chunk_size=0))


class TestFunctionalForm:
    def test_parallel_map_matches_comprehension(self):
        assert parallel_map(square, range(9), workers=3,
                            backend="thread") == [square(i)
                                                  for i in range(9)]


class TestTelemetry:
    def test_pool_accounting_reaches_metrics(self):
        with observe.session() as tel:
            parallel_map(square, range(6), workers=2, backend="thread",
                         chunk_size=2)
        assert tel.metrics.value("repro_runtime_tasks_total",
                                 backend="thread") == 6.0
        assert tel.metrics.value("repro_runtime_chunks_total",
                                 backend="thread") == 3.0

    def test_disabled_session_records_nothing(self):
        parallel_map(square, range(6), workers=2, backend="thread")
        assert observe.current().enabled is False
