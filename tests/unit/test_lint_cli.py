"""End-to-end tests for ``repro lint`` against the planted fixture.

The fixture (`tests/fixtures/lint_planted.py`) carries exactly one
defect per planted family — a near-clone pair, an unseeded
``random.random()``, an even voting set, a hand-seeded trial RNG — so
the JSON output pins both the detectors and their formatting.
"""

import json
import os

import pytest

from repro.cli import main

FIXTURE = os.path.join(os.path.dirname(__file__), os.pardir,
                       "fixtures", "lint_planted.py")
REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                         os.pardir, os.pardir))


def lint_json(capsys, *argv):
    code = main(["lint", *argv, "--format", "json"])
    return code, json.loads(capsys.readouterr().out)


class TestPlantedFixture:
    def test_exactly_the_planted_findings_in_json(self, capsys):
        code, payload = lint_json(capsys, FIXTURE)
        rules = [f["rule"] for f in payload["findings"]]
        assert sorted(rules) == ["DET001", "DET006", "DIV001", "PAT001"]
        assert payload["counts"]["by_rule"] == {
            "DET001": 1, "DET006": 1, "DIV001": 1, "PAT001": 1}
        assert payload["counts"]["by_severity"] == {"warning": 4}
        assert payload["files"] == 1
        # All four anchor inside the fixture with real locations.
        for finding in payload["findings"]:
            assert finding["path"].endswith("lint_planted.py")
            assert finding["line"] > 0

    def test_messages_name_the_defects(self, capsys):
        _, payload = lint_json(capsys, FIXTURE)
        by_rule = {f["rule"]: f["message"] for f in payload["findings"]}
        assert "median_filter_a" in by_rule["DIV001"]
        assert "similarity" in by_rule["DIV001"]
        assert "global RNG" in by_rule["DET001"]
        assert "noisy_trial" in by_rule["DET006"]
        assert "trial_stream" in by_rule["DET006"]
        assert "4 versions" in by_rule["PAT001"]

    def test_fail_on_gates_the_exit_code(self, capsys):
        assert main(["lint", FIXTURE, "--fail-on", "warning"]) == 1
        capsys.readouterr()
        assert main(["lint", FIXTURE, "--fail-on", "error"]) == 0
        capsys.readouterr()
        assert main(["lint", FIXTURE, "--fail-on", "never"]) == 0

    def test_select_restricts_rules(self, capsys):
        code, payload = lint_json(capsys, FIXTURE, "--select", "DET001")
        assert [f["rule"] for f in payload["findings"]] == ["DET001"]

    def test_diversity_threshold_is_tunable(self, capsys):
        # The planted pair sits at ~0.91 similarity: caught by the 0.9
        # default, released by a stricter exact-clone-only threshold.
        code, payload = lint_json(capsys, FIXTURE, "--select", "DIV001",
                                  "--diversity-threshold", "1.0")
        assert payload["findings"] == []

    def test_text_format_renders_findings(self, capsys):
        assert main(["lint", FIXTURE]) == 0  # warnings < default error
        out = capsys.readouterr().out
        assert "DET001 warning:" in out
        assert "DET006 warning:" in out
        assert "4 findings (4 warning) in 1 file" in out


class TestCliErrors:
    def test_missing_path_exits_2(self, capsys):
        assert main(["lint", "definitely/not/here.py"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_rule_exits_2(self, capsys):
        assert main(["lint", FIXTURE, "--select", "NOPE1"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_bad_threshold_exits_2(self, capsys):
        assert main(["lint", FIXTURE, "--diversity-threshold", "7"]) == 2
        assert "diversity-threshold" in capsys.readouterr().err

    def test_write_baseline_requires_baseline_path(self, capsys):
        assert main(["lint", FIXTURE, "--write-baseline"]) == 2
        assert "--baseline" in capsys.readouterr().err


class TestBaselineWorkflow:
    def test_write_then_gate_roundtrip(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["lint", FIXTURE, "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        assert "4 findings written" in capsys.readouterr().out
        assert main(["lint", FIXTURE, "--fail-on", "warning",
                     "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "0 findings" in out
        assert "4 baseline" in out


class TestSelfLintGate:
    def test_repro_tree_is_clean_under_committed_baseline(
            self, capsys, monkeypatch):
        """The CI gate: src/repro passes --fail-on warning."""
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "src/repro", "--fail-on", "warning",
                     "--baseline", "lint-baseline.json"]) == 0
        assert "0 findings" in capsys.readouterr().out
