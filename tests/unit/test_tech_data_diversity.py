"""Unit tests for data diversity (Ammann & Knight) and N-variant data
(data diversity for security)."""

import pytest

from repro.components.version import Version
from repro.environment import SimEnvironment
from repro.exceptions import (
    AllAlternativesFailedError,
    AttackDetectedError,
    NoMajorityError,
)
from repro.faults.development import Bohrbug, InputRegion
from repro.taxonomy.paper import paper_entry
from repro.techniques.data_diversity import (
    DataDiversity,
    Reexpression,
    shift_reexpression,
)
from repro.techniques.data_diversity_security import (
    NVariantDataStore,
    default_encodings,
    offset_encoding,
    xor_encoding,
)

PERIOD = 1000


def periodic(x):
    """A computation invariant under x -> x + PERIOD."""
    return (x % PERIOD) * 3


def faulty_periodic_version(lo=100, hi=120):
    """Fails deterministically on a narrow input region."""
    return Version("prog", impl=periodic,
                   faults=[Bohrbug("region-bug",
                                   region=InputRegion(lo, hi))])


def period_shift(k=1):
    return shift_reexpression(PERIOD * k, name=f"+{k}T")


class TestReexpression:
    def test_identity(self):
        assert Reexpression.identity().transform((5, 6)) == (5, 6)

    def test_shift(self):
        assert period_shift().transform((7,)) == (1007,)
        assert period_shift().transform((7, "extra")) == (1007, "extra")


class TestRetryBlocks:
    def test_taxonomy_matches_paper(self):
        assert DataDiversity.TAXONOMY.matches(paper_entry("Data diversity"))

    def test_original_input_preferred(self):
        dd = DataDiversity(faulty_periodic_version(), [period_shift()])
        assert dd.execute_retry(500) == periodic(500)
        assert dd.retry_pattern.stats.executions == 1

    def test_reexpression_escapes_failure_region(self):
        dd = DataDiversity(faulty_periodic_version(), [period_shift()])
        # 110 is inside [100, 120): original fails, shifted succeeds and
        # produces the identical (exact re-expression) output.
        assert dd.execute_retry(110) == periodic(110)
        assert dd.retry_pattern.stats.masked_failures == 1

    def test_multiple_reexpressions_cascade(self):
        # Bug covers the shifted value too; only the second shift escapes.
        program = Version("prog", impl=periodic,
                          faults=[Bohrbug("wide",
                                          predicate=lambda args:
                                          args[0] in (110, 1110))])
        dd = DataDiversity(program, [period_shift(1), period_shift(2)])
        assert dd.execute_retry(110) == periodic(110)

    def test_exhaustion_raises(self):
        program = Version("prog", impl=periodic,
                          faults=[Bohrbug("everywhere",
                                          region=InputRegion(0, 10 ** 9))])
        dd = DataDiversity(program, [period_shift()])
        with pytest.raises(AllAlternativesFailedError):
            dd.execute_retry(5)

    def test_needs_reexpressions(self):
        with pytest.raises(ValueError):
            DataDiversity(faulty_periodic_version(), [])


class TestNCopy:
    def test_parallel_copies_vote(self):
        dd = DataDiversity(faulty_periodic_version(),
                           [period_shift(1), period_shift(2)])
        assert dd.execute_ncopy(110) == periodic(110)

    def test_all_copies_in_failure_region_rejected(self):
        program = Version("prog", impl=periodic,
                          faults=[Bohrbug("everywhere",
                                          region=InputRegion(0, 10 ** 9))])
        dd = DataDiversity(program, [period_shift()])
        with pytest.raises(NoMajorityError):
            dd.execute_ncopy(5)

    def test_parallel_billing(self):
        env = SimEnvironment()
        dd = DataDiversity(faulty_periodic_version(),
                           [period_shift(1), period_shift(2)])
        dd.execute_ncopy(500, env=env)
        assert env.clock.now == 1.0  # three copies at unit cost, parallel


class TestEncodings:
    def test_xor_roundtrip(self):
        enc = xor_encoding(0xABCD)
        assert enc.decode(enc.encode(42)) == 42

    def test_offset_roundtrip(self):
        enc = offset_encoding(1234)
        assert enc.decode(enc.encode(-7)) == -7

    def test_default_encodings_distinct(self):
        encodings = default_encodings(4)
        encoded = [e.encode(100) for e in encodings]
        assert len(set(encoded)) == 4  # same value, different concrete form

    def test_minimum_two(self):
        with pytest.raises(ValueError):
            default_encodings(1)


class TestNVariantDataStore:
    def test_taxonomy_matches_paper(self):
        assert NVariantDataStore.TAXONOMY.matches(
            paper_entry("Data diversity for security"))

    def test_roundtrip(self):
        store = NVariantDataStore()
        store.put("k", 7)
        assert store.get("k") == 7
        assert "k" in store

    def test_missing_key(self):
        with pytest.raises(KeyError):
            NVariantDataStore().get("missing")

    def test_uniform_tamper_detected(self):
        store = NVariantDataStore()
        store.put("k", 7)
        store.tamper_raw("k", 999)  # same concrete value everywhere
        with pytest.raises(AttackDetectedError) as info:
            store.get("k")
        assert store.detections == 1
        assert info.value.evidence  # per-variant decoded values

    def test_single_variant_tamper_detected(self):
        store = NVariantDataStore()
        store.put("k", 7)
        store.tamper_raw("k", 999, variant=1)
        with pytest.raises(AttackDetectedError):
            store.get("k")

    def test_legitimate_overwrite_not_flagged(self):
        store = NVariantDataStore()
        store.put("k", 7)
        store.put("k", 8)
        assert store.get("k") == 8
        assert store.detections == 0

    def test_needs_two_encodings(self):
        with pytest.raises(ValueError):
            NVariantDataStore(encodings=[xor_encoding(1)])
