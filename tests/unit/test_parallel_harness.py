"""Serial-vs-parallel byte-identity for the experiment harness.

Every unit (trial, campaign cell) is a pure function of its seed, so a
worker pool of any size must reproduce the serial path exactly — same
metrics, same stdev, same rendered tables, byte for byte.
"""

import os
import pathlib
import subprocess
import sys

from repro.faults.development import Bohrbug, Heisenbug, InputRegion
from repro.harness.campaign import FaultCampaign, _cell_seed
from repro.harness.experiment import Experiment, run_trials, summarize


# -- module-level (picklable) building blocks for the process backend --


def seeded_trial(seed):
    """Pure, heterogeneous-keyed trial metrics."""
    import random

    rng = random.Random(seed)
    metrics = {"value": rng.random(), "work": float(seed % 3)}
    if seed % 2:
        metrics["rare"] = rng.random() * 10
    return metrics


def nvp_trial(seed):
    """A trial with real redundant executions (telemetry-rich)."""
    from repro.components.library import diverse_versions
    from repro.environment import SimEnvironment
    from repro.exceptions import NoMajorityError
    from repro.techniques.nvp import NVersionProgramming

    env = SimEnvironment(seed=seed)
    nvp = NVersionProgramming(
        diverse_versions(lambda x: x + 1, 3, 0.1, seed=seed))
    ok = 0
    for x in range(5):
        try:
            ok += nvp.execute(x, env=env) == x + 1
        except NoMajorityError:
            pass
    return {"ok": float(ok),
            "executions": float(nvp.stats.executions),
            "masked": float(nvp.stats.masked_failures)}


def retry_protector(faulty, env):
    def protected(x):
        last = None
        for _ in range(4):
            try:
                return faulty(x, env=env)
            except Exception as exc:
                last = exc
        raise last
    return protected


def make_bohrbug():
    return Bohrbug("b", region=InputRegion(0, 10 ** 9))


def make_heisenbug():
    return Heisenbug("h", probability=0.5)


CAMPAIGN_KWARGS = dict(
    protectors={"retry": retry_protector},
    faults={"bohrbug": make_bohrbug, "heisenbug": make_heisenbug},
    requests=60, seed=3)


class TestExperimentByteIdentity:
    def test_process_pool_matches_serial(self):
        seeds = tuple(range(12))
        serial = Experiment(name="e", trial=seeded_trial,
                            seeds=seeds).run()
        parallel = Experiment(name="e", trial=seeded_trial, seeds=seeds,
                              workers=4, backend="process").run()
        assert repr(parallel) == repr(serial)
        assert repr(summarize(parallel)) == repr(summarize(serial))

    def test_thread_fallback_matches_serial_for_closures(self):
        bias = 0.5
        trial = lambda seed: {"x": seed + bias}  # noqa: E731 - unpicklable
        seeds = tuple(range(8))
        serial = Experiment(name="e", trial=trial, seeds=seeds).run()
        parallel = Experiment(name="e", trial=trial, seeds=seeds,
                              workers=3).run()
        assert repr(parallel) == repr(serial)

    def test_instrumented_digests_match_serial(self):
        seeds = (0, 1, 2, 3)
        serial = Experiment(name="e", trial=nvp_trial, seeds=seeds,
                            instrument=True).run()
        parallel = Experiment(name="e", trial=nvp_trial, seeds=seeds,
                              instrument=True, workers=2,
                              backend="process").run()
        assert [r.metrics for r in parallel] == [r.metrics
                                                 for r in serial]
        assert [r.telemetry for r in parallel] == [r.telemetry
                                                   for r in serial]

    def test_run_trials_workers_knob(self):
        serial = run_trials(seeded_trial, seeds=range(10))
        parallel = run_trials(seeded_trial, seeds=range(10), workers=4,
                              backend="process")
        assert repr(parallel) == repr(serial)


class TestCampaignByteIdentity:
    def test_process_pool_matrix_and_table_match_serial(self):
        serial = FaultCampaign(**CAMPAIGN_KWARGS)
        parallel = FaultCampaign(**CAMPAIGN_KWARGS, workers=4,
                                 backend="process")
        assert parallel.run() == serial.run()
        assert parallel.render() == serial.render()

    def test_closure_campaign_falls_back_and_matches(self):
        kwargs = dict(
            protectors={"retry": retry_protector},
            faults={"quiet": lambda: Heisenbug("q", probability=0.0)},
            requests=30, seed=1)
        serial = FaultCampaign(**kwargs)
        parallel = FaultCampaign(**kwargs, workers=2)
        assert parallel.render() == serial.render()


class TestStableSeedDerivation:
    def test_cell_seed_is_crc_based_not_hash_based(self):
        # Known digest: the derivation must not move when PYTHONHASHSEED
        # does (builtin hash of strings would).
        import zlib

        expected = 3 + zlib.crc32(b"retry|bohrbug") % 10_000
        assert _cell_seed(3, "retry", "bohrbug") == expected

    def test_campaign_reproduces_across_interpreter_hash_seeds(self):
        src = str(pathlib.Path(__file__).resolve().parents[2] / "src")
        script = (
            "from repro.harness.campaign import _cell_seed\n"
            "print([_cell_seed(7, p, f) for p in ('a', 'b')"
            " for f in ('x', 'y')])\n")
        outputs = set()
        for hash_seed in ("0", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed,
                       PYTHONPATH=src)
            proc = subprocess.run([sys.executable, "-c", script],
                                  capture_output=True, text=True,
                                  env=env, check=True)
            outputs.add(proc.stdout)
        assert len(outputs) == 1
