"""Unit tests for self-checking programming."""

import pytest

from repro.adjudicators.acceptance import PredicateAcceptanceTest
from repro.components.version import Version
from repro.exceptions import AllAlternativesFailedError
from repro.faults.base import WRONG_VALUE
from repro.faults.development import Bohrbug, InputRegion
from repro.taxonomy.paper import paper_entry
from repro.techniques.self_checking import (
    CheckedComponent,
    ComparedPair,
    SelfCheckingProgramming,
)


def oracle(x):
    return 3 * x


def good(name):
    return Version(name, impl=oracle)


def broken(name, effect=WRONG_VALUE):
    return Version(name, impl=oracle,
                   faults=[Bohrbug(f"{name}-bug",
                                   region=InputRegion(0, 10 ** 9),
                                   effect=effect)])


def acceptance():
    return PredicateAcceptanceTest(lambda args, v: v == 3 * args[0])


class TestConstruction:
    def test_taxonomy_matches_paper(self):
        assert SelfCheckingProgramming.TAXONOMY.matches(
            paper_entry("Self-checking programming"))

    def test_rejects_unchecked_units(self):
        with pytest.raises(TypeError):
            SelfCheckingProgramming([good("v")])

    def test_needs_components(self):
        with pytest.raises(ValueError):
            SelfCheckingProgramming([])


class TestAcceptanceFlavour:
    def test_acting_component_serves(self):
        scp = SelfCheckingProgramming.with_acceptance_tests(
            [good("acting"), good("spare")], acceptance())
        assert scp.execute(4) == 12
        assert scp.acting.name == "acting"

    def test_hot_spare_takes_over_without_rollback(self):
        scp = SelfCheckingProgramming.with_acceptance_tests(
            [broken("acting"), good("spare")], acceptance())
        assert scp.execute(4) == 12
        # The failed acting component is discarded.
        assert scp.acting.name == "spare"
        assert scp.spares_left == 0

    def test_redundancy_is_consumed(self):
        scp = SelfCheckingProgramming.with_acceptance_tests(
            [broken("a"), broken("b"), good("c")], acceptance())
        assert scp.spares_left == 2
        scp.execute(1)
        assert scp.spares_left == 0
        # Subsequent requests still work through the survivor.
        assert scp.execute(2) == 6

    def test_all_components_failing_raises(self):
        scp = SelfCheckingProgramming.with_acceptance_tests(
            [broken("a"), broken("b")], acceptance())
        with pytest.raises(AllAlternativesFailedError):
            scp.execute(1)


class TestComparisonFlavour:
    def test_agreeing_pair_serves(self):
        scp = SelfCheckingProgramming.with_comparison_pairs(
            [(good("a1"), good("a2"))])
        assert scp.execute(5) == 15

    def test_diverging_pair_detected_and_spare_used(self):
        scp = SelfCheckingProgramming.with_comparison_pairs(
            [(broken("a1"), good("a2")), (good("b1"), good("b2"))])
        assert scp.execute(5) == 15
        assert scp.acting.name == "b1+b2"

    def test_pair_with_common_wrong_value_passes_undetected(self):
        # The known blind spot of comparison pairs: identical wrong
        # answers compare equal.
        wrong_a = Version("w1", impl=lambda x: -7)
        wrong_b = Version("w2", impl=lambda x: -7)
        scp = SelfCheckingProgramming.with_comparison_pairs(
            [(wrong_a, wrong_b)])
        assert scp.execute(5) == -7

    def test_crashing_half_detected(self):
        from repro.faults.base import CRASH
        scp = SelfCheckingProgramming.with_comparison_pairs(
            [(broken("a1", effect=CRASH), good("a2")),
             (good("b1"), good("b2"))])
        assert scp.execute(5) == 15

    def test_pair_versions_listed_in_cost_ledger(self):
        scp = SelfCheckingProgramming.with_comparison_pairs(
            [(good("a1"), good("a2"))])
        scp.execute(1)
        ledger = scp.cost_ledger(correct=1)
        assert ledger.design_cost == 200.0  # both halves
        assert ledger.adjudicator_design_cost == 0.0  # implicit comparison


class TestMixedFlavours:
    def test_explicit_flavour_charges_adjudicator_design(self):
        scp = SelfCheckingProgramming([
            CheckedComponent(good("a"), acceptance()),
            ComparedPair(good("b1"), good("b2")),
        ])
        scp.execute(1)
        ledger = scp.cost_ledger(correct=1)
        assert ledger.adjudicator_design_cost == 50.0  # one explicit
        assert ledger.design_cost == 300.0  # three versions total
