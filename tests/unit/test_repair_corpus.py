"""Unit tests for the repair corpus: every subject is well-formed and
repairable."""

import pytest

from repro.repair.corpus import RepairSubject, all_subjects
from repro.repair.engine import GeneticRepairEngine

SUBJECTS = all_subjects()


@pytest.mark.parametrize("subject", SUBJECTS, ids=lambda s: s.name)
class TestCorpusWellFormed:
    def test_reference_passes_its_suite(self, subject):
        assert subject.suite.passing_fraction(subject.correct) == 1.0

    def test_buggy_variant_fails_its_suite(self, subject):
        fraction = subject.suite.passing_fraction(subject.buggy)
        assert fraction < 1.0

    def test_buggy_variant_partially_works(self, subject):
        # A seeded Bohrbug is not total destruction: some tests pass, so
        # fitness has a gradient for the search to climb.
        assert subject.suite.passing_fraction(subject.buggy) > 0.0

    def test_same_signature(self, subject):
        assert subject.correct.params == subject.buggy.params
        assert subject.correct.name == subject.buggy.name


@pytest.mark.parametrize("subject", SUBJECTS, ids=lambda s: s.name)
def test_every_subject_is_gp_repairable(subject):
    """At least one of three seeds repairs each corpus subject.

    Budgets are modest (the point is repairability, not convergence
    statistics — those live in the C10 benchmark).
    """
    for seed in (1, 2, 3):
        engine = GeneticRepairEngine(subject.suite, population_size=30,
                                     max_generations=25, seed=seed)
        result = engine.repair(subject.buggy)
        if result.fixed:
            assert subject.suite.passing_fraction(result.program) == 1.0
            return
    pytest.fail(f"{subject.name} not repaired by any seed")


def test_corpus_covers_distinct_fault_kinds():
    kinds = {subject.fault_kind for subject in SUBJECTS}
    assert len(kinds) == len(SUBJECTS)


def test_corpus_size():
    assert len(SUBJECTS) >= 5
