"""Unit tests for the lint engine: discovery, suppression, reporting."""

import json

import pytest

from repro import observe
from repro.lint import (
    Baseline,
    Finding,
    LintEngine,
    at_least,
    discover_files,
    render_json,
    render_text,
    severity_rank,
)

HASHY = "def f(n):\n    return hash(n)\n"


class TestSeverities:
    def test_ordering(self):
        assert severity_rank("info") < severity_rank("warning") \
            < severity_rank("error")
        assert at_least("error", "warning")
        assert not at_least("info", "warning")

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            severity_rank("fatal")
        with pytest.raises(ValueError):
            Finding(rule="X", severity="fatal", path="p", line=1, col=0,
                    message="m")


class TestDiscovery:
    def test_walk_skips_hidden_and_pycache(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "b.py").write_text("y = 2\n")
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "c.py").write_text("z = 3\n")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "d.py").write_text("w = 4\n")
        (tmp_path / "notes.txt").write_text("not python\n")
        found = discover_files([str(tmp_path)])
        assert [f.split("/")[-1] for f in found] == ["a.py", "b.py"]

    def test_named_file_taken_as_is(self, tmp_path):
        target = tmp_path / "script"
        target.write_text("x = 1\n")
        assert discover_files([str(target)]) == [str(target)]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            discover_files([str(tmp_path / "nope")])


class TestRun:
    def test_findings_are_sorted_and_counted(self, tmp_path):
        (tmp_path / "b.py").write_text(HASHY)
        (tmp_path / "a.py").write_text(
            "import time\n\ndef g():\n    return time.time(), hash(g)\n")
        report = LintEngine().run([str(tmp_path)])
        assert [f.path.split("/")[-1] for f in report.findings] == \
            ["a.py", "a.py", "b.py"]
        assert report.files == 2
        assert report.counts_by_rule() == {"DET002": 1, "DET003": 2}
        assert report.counts_by_severity() == {"warning": 3}
        assert report.duration > 0

    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        report = LintEngine().run([str(tmp_path)])
        assert [f.rule for f in report.findings] == ["E000"]
        assert report.findings[0].severity == "error"
        assert report.exit_code("error") == 1

    def test_exit_codes_respect_fail_on(self, tmp_path):
        (tmp_path / "w.py").write_text(HASHY)
        report = LintEngine().run([str(tmp_path)])
        assert report.exit_code("error") == 0
        assert report.exit_code("warning") == 1
        assert report.exit_code("info") == 1
        assert report.exit_code("never") == 0


class TestBaseline:
    def test_roundtrip_suppresses_existing_but_not_new(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(HASHY)
        engine = LintEngine()
        baseline = engine.run_for_baseline([str(target)])
        path = tmp_path / "baseline.json"
        baseline.write(str(path))

        gated = LintEngine(baseline=Baseline.load(str(path)))
        report = gated.run([str(target)])
        assert report.findings == []
        assert report.baseline_suppressed == 1

        target.write_text(HASHY + "\n\ndef g(m):\n    return hash(m)\n")
        gated = LintEngine(baseline=Baseline.load(str(path)))
        report = gated.run([str(target)])
        assert [f.rule for f in report.findings] == ["DET003"]
        assert report.findings[0].line == 6
        assert report.baseline_suppressed == 1

    def test_baseline_survives_line_shifts(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(HASHY)
        baseline = LintEngine().run_for_baseline([str(target)])
        target.write_text("# a new comment\nX = 1\n" + HASHY)
        report = LintEngine(baseline=baseline).run([str(target)])
        assert report.findings == []
        assert report.baseline_suppressed == 1

    def test_multiplicity_is_honoured(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("def f(n):\n"
                          "    return hash(n)\n"
                          "    return hash(n)\n")
        baseline = LintEngine().run_for_baseline([str(target)])
        assert len(baseline) == 2
        # A baseline holding only ONE of the two identical findings
        # must keep flagging the other.
        half = Baseline(baseline.entries[:1])
        report = LintEngine(baseline=half).run([str(target)])
        assert [f.rule for f in report.findings] == ["DET003"]
        assert report.baseline_suppressed == 1

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError):
            Baseline.load(str(path))


#: One line tripping two rules at once: an unseeded global-RNG draw
#: (DET001) plus a wall-clock read (DET002).
TWO_RULES = ("import random\n"
             "import time\n\n\n"
             "def f():\n"
             "    return random.random() + time.time(){pragma}\n")

#: A clock hazard reachable only transitively (the alias hides it from
#: DET002), behind a decorated trial entry point — for pinning *where*
#: a pragma must sit to silence a deep finding.
DECORATED = ("from time import time as _w\n\n\n"
             "def deco(fn):\n"
             "    return fn\n\n\n"
             "def leaf():\n"
             "    return _w()\n\n\n"
             "@deco{decorator_pragma}\n"
             "def alpha_trial(seed):{def_pragma}\n"
             "    return {{\"value\": float(leaf())}}\n")


class TestPragmaEdgeCases:
    def test_one_line_two_rules_blanket_pragma(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(TWO_RULES.format(pragma="  # lint: allow"))
        report = LintEngine().run([str(target)])
        assert report.findings == []
        assert report.pragma_suppressed == 2

    def test_one_line_two_rules_selective_pragma(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            TWO_RULES.format(pragma="  # lint: allow[DET002]"))
        report = LintEngine().run([str(target)])
        # Only the named rule is silenced; its roommate still fires.
        assert [f.rule for f in report.findings] == ["DET001"]
        assert report.pragma_suppressed == 1

    def test_one_line_two_rules_listed_pragma(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            TWO_RULES.format(pragma="  # lint: allow[DET001, DET002]"))
        report = LintEngine().run([str(target)])
        assert report.findings == []
        assert report.pragma_suppressed == 2

    def test_deep_pragma_on_decorator_line_does_not_suppress(
            self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(DECORATED.format(
            decorator_pragma="  # lint: allow[XDET001]",
            def_pragma=""))
        report = LintEngine(deep=True).run([str(target)])
        # Deep findings anchor on the entry's ``def`` line, not on its
        # decorators — a decorator-line pragma misses.
        assert [f.rule for f in report.findings] == ["XDET001"]
        assert report.pragma_suppressed == 0

    def test_deep_pragma_on_def_line_suppresses(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(DECORATED.format(
            decorator_pragma="",
            def_pragma="  # lint: allow[XDET001]"))
        report = LintEngine(deep=True).run([str(target)])
        assert report.findings == []
        assert report.pragma_suppressed == 1

    def test_pragma_wins_before_baseline_is_consulted(self, tmp_path):
        # Seed a baseline with ONE budget unit for the hash(n) finding
        # (fingerprints bind the path, so seed from the same file).
        target = tmp_path / "mod.py"
        target.write_text(HASHY)
        baseline = LintEngine().run_for_baseline([str(target)])
        assert len(baseline) == 1
        # Now two identical findings, the FIRST pragma'd.  Pragma is
        # checked before the baseline, so it must not consume the
        # budget — which the second finding then uses.
        target.write_text("def f(n):\n"
                          "    return hash(n)  # lint: allow[DET003]\n"
                          "    return hash(n)\n")
        report = LintEngine(baseline=baseline).run([str(target)])
        assert report.findings == []
        assert report.pragma_suppressed == 1
        assert report.baseline_suppressed == 1


class TestReporters:
    def _report(self, tmp_path):
        (tmp_path / "m.py").write_text(HASHY)
        return LintEngine().run([str(tmp_path)])

    def test_text_lists_findings_and_summary(self, tmp_path):
        text = render_text(self._report(tmp_path))
        assert "DET003 warning:" in text
        assert "1 finding (1 warning) in 1 file" in text

    def test_json_is_stable_and_parsable(self, tmp_path):
        report = self._report(tmp_path)
        payload = json.loads(render_json(report))
        assert payload["version"] == 1
        assert payload["files"] == 1
        assert payload["counts"]["by_rule"] == {"DET003": 1}
        assert payload["findings"][0]["rule"] == "DET003"
        assert payload["findings"][0]["line"] == 2
        assert payload["suppressed"] == {"pragma": 0, "baseline": 0}

    def test_clean_run_renders_zero_findings(self, tmp_path):
        (tmp_path / "m.py").write_text("x = 1\n")
        text = render_text(LintEngine().run([str(tmp_path)]))
        assert text.startswith("0 findings (none) in 1 file")


class TestMetrics:
    def test_run_feeds_installed_session(self, tmp_path):
        (tmp_path / "m.py").write_text(
            HASHY + "\nY = hash(f)  # lint: allow[DET003]\n")
        with observe.session() as tel:
            LintEngine().run([str(tmp_path)])
        metrics = tel.metrics.as_dict()
        assert metrics["repro_lint_runs_total"] == 1
        assert metrics["repro_lint_files_scanned_total"] == 1
        assert metrics['repro_lint_findings_total{rule="DET003"}'] == 1
        assert metrics['repro_lint_suppressed_total{layer="pragma"}'] == 1
        assert metrics["repro_lint_run_seconds_count"] == 1

    def test_disabled_session_costs_nothing(self, tmp_path):
        (tmp_path / "m.py").write_text(HASHY)
        report = LintEngine().run([str(tmp_path)])
        assert len(report.findings) == 1  # no crash without telemetry

    def test_lint_scenario_reports_self_lint(self):
        from repro.harness.scenarios import SCENARIOS

        with observe.session() as tel:
            summary = SCENARIOS["lint"](1, 0)
        assert summary["files"] > 100
        assert summary["pragma_suppressed"] >= 2
        assert tel.metrics.as_dict()["repro_lint_runs_total"] == 1


class TestFingerprint:
    def test_ignores_line_numbers_and_path_roots(self):
        base = dict(rule="DET003", severity="warning", col=0,
                    message="m")
        a = Finding(path="src/repro/x/m.py", line=3, **base)
        b = Finding(path="/abs/root/src/repro/x/m.py", line=99, **base)
        line = "    return hash(n)"
        assert a.fingerprint(line) == b.fingerprint(line)
        assert a.fingerprint(line) != a.fingerprint("other text")
