"""Unit tests for the WS-level fault-tolerance activities."""

import pytest

from repro.adjudicators.acceptance import PredicateAcceptanceTest
from repro.adjudicators.voting import PluralityVoter
from repro.components.interface import FunctionSpec
from repro.environment import SimEnvironment
from repro.exceptions import (
    AllAlternativesFailedError,
    NoMajorityError,
    ServiceLookupError,
)
from repro.faults.base import WRONG_VALUE
from repro.faults.development import Bohrbug
from repro.services.ft_activities import (
    AlternateInvoke,
    SelfCheckingInvoke,
    VotedInvoke,
)
from repro.services.process_engine import Invoke, OrchestrationEngine, Sequence
from repro.services.registry import ServiceRegistry
from repro.services.service import Service

SPEC = FunctionSpec("convert", arity=1)


def service(name, impl=None, availability=1.0, faults=()):
    return Service(name, SPEC, impl=impl or (lambda x: x * 2),
                   availability=availability, faults=faults)


def engine_with(*services):
    registry = ServiceRegistry()
    for s in services:
        registry.publish(s)
    return OrchestrationEngine(registry, env=SimEnvironment(seed=1))


def wrong_everywhere(name):
    return Bohrbug(name, predicate=lambda args: True, effect=WRONG_VALUE)


class TestVotedInvoke:
    def test_unanimous_services(self):
        engine = engine_with(service("a"), service("b"), service("c"))
        ctx = {}
        value = VotedInvoke(SPEC, args=(4,)).run(engine, ctx)
        assert value == 8
        assert ctx["convert"] == 8

    def test_minority_wrong_service_outvoted(self):
        engine = engine_with(
            service("a"), service("b"),
            service("c", faults=[wrong_everywhere("c-bug")]))
        assert VotedInvoke(SPEC, args=(4,)).run(engine, {}) == 8

    def test_minority_unavailable_service_outvoted(self):
        engine = engine_with(service("a"), service("b"),
                             service("c", availability=0.0))
        assert VotedInvoke(SPEC, args=(4,)).run(engine, {}) == 8

    def test_no_quorum_raises(self):
        engine = engine_with(service("a", availability=0.0),
                             service("b", availability=0.0),
                             service("c"))
        with pytest.raises(NoMajorityError):
            VotedInvoke(SPEC, args=(4,)).run(engine, {})

    def test_custom_voter(self):
        engine = engine_with(service("a"),
                             service("b", availability=0.0),
                             service("c", availability=0.0))
        voted = VotedInvoke(SPEC, args=(4,), voter=PluralityVoter())
        assert voted.run(engine, {}) == 8

    def test_max_services_prefers_available(self):
        calls = {"low": 0}

        def low_impl(x):
            calls["low"] += 1
            return x * 2

        engine = engine_with(
            service("high1"), service("high2"), service("high3"),
            service("low", impl=low_impl, availability=0.5))
        VotedInvoke(SPEC, args=(4,), max_services=3).run(engine, {})
        assert calls["low"] == 0

    def test_max_services_validated(self):
        with pytest.raises(ValueError):
            VotedInvoke(SPEC, max_services=1)

    def test_args_from_context(self):
        engine = engine_with(service("a"), service("b"))
        ctx = {"x": 5}
        voted = VotedInvoke(SPEC, args=lambda c: (c["x"],),
                            result_key="out")
        voted.run(engine, ctx)
        assert ctx["out"] == 10

    def test_no_implementations(self):
        engine = engine_with()
        with pytest.raises(ServiceLookupError):
            VotedInvoke(SPEC, args=(1,)).run(engine, {})


class TestSelfCheckingInvoke:
    def _acceptance(self):
        return PredicateAcceptanceTest(lambda args, v: v == args[0] * 2)

    def test_acting_result_used(self):
        engine = engine_with(service("acting"), service("spare"))
        invoke = SelfCheckingInvoke(SPEC, self._acceptance(), args=(3,))
        assert invoke.run(engine, {}) == 6

    def test_spare_used_when_acting_fails_validation(self):
        engine = engine_with(
            service("acting", faults=[wrong_everywhere("a-bug")]),
            service("spare"))
        invoke = SelfCheckingInvoke(SPEC, self._acceptance(), args=(3,))
        assert invoke.run(engine, {}) == 6

    def test_spare_used_when_acting_unavailable(self):
        engine = engine_with(service("acting", availability=0.0),
                             service("spare"))
        invoke = SelfCheckingInvoke(SPEC, self._acceptance(), args=(3,))
        assert invoke.run(engine, {}) == 6

    def test_all_failing_raises(self):
        engine = engine_with(service("a", availability=0.0),
                             service("b", availability=0.0))
        invoke = SelfCheckingInvoke(SPEC, self._acceptance(), args=(3,))
        with pytest.raises(AllAlternativesFailedError):
            invoke.run(engine, {})


class TestAlternateInvoke:
    def test_first_healthy_alternate_wins(self):
        alt_spec = FunctionSpec("convert-alt", arity=1)
        engine = engine_with(service("dead", availability=0.0))
        engine.registry.publish(Service("backup", alt_spec,
                                        impl=lambda x: x * 2))
        activity = AlternateInvoke([Invoke(SPEC, args=(4,)),
                                    Invoke(alt_spec, args=(4,))])
        assert activity.run(engine, {}) == 8

    def test_exhaustion(self):
        engine = engine_with(service("dead", availability=0.0))
        activity = AlternateInvoke([Invoke(SPEC, args=(4,)),
                                    Invoke(SPEC, args=(4,))])
        with pytest.raises(AllAlternativesFailedError) as info:
            activity.run(engine, {})
        assert len(info.value.failures) == 2

    def test_needs_alternates(self):
        with pytest.raises(ValueError):
            AlternateInvoke([])

    def test_composes_in_sequences(self):
        engine = engine_with(service("a"), service("b"), service("c"))
        flow = Sequence(
            VotedInvoke(SPEC, args=(2,), result_key="first"),
            VotedInvoke(SPEC, args=lambda ctx: (ctx["first"],),
                        result_key="second"),
        )
        ctx = {}
        assert engine.run(flow, ctx) == 8
        assert ctx == {"first": 4, "second": 8}
