"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.components.library import diverse_versions
from repro.environment import SimEnvironment


@pytest.fixture
def env() -> SimEnvironment:
    """A fresh deterministic environment."""
    return SimEnvironment(seed=42)


@pytest.fixture
def small_heap_env() -> SimEnvironment:
    """An environment whose heap exhausts quickly (aging experiments)."""
    return SimEnvironment(seed=42, heap_capacity=64)


def square(x):
    """The oracle used across version-population tests."""
    return x * x


@pytest.fixture
def oracle():
    return square


@pytest.fixture
def five_versions():
    """Five independent versions of ``square`` with 20% failure inputs."""
    return diverse_versions(square, n=5, failure_probability=0.2, seed=7)
