"""Property-based tests for the repair AST and data re-expression."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.components.version import Version
from repro.repair.ast_ops import (
    Assign,
    BinOp,
    Compare,
    Const,
    EvaluationError,
    If,
    Program,
    Return,
    Var,
)
from repro.repair.mutation import all_sites, crossover, mutate, node_at
from repro.techniques.data_diversity import shift_reexpression

# -- AST generators ----------------------------------------------------------

exprs = st.recursive(
    st.one_of(st.builds(Const, st.integers(min_value=-20, max_value=20)),
              st.builds(Var, st.sampled_from(["a", "b"]))),
    lambda children: st.builds(
        BinOp, st.sampled_from(["+", "-", "*", "min", "max"]),
        children, children),
    max_leaves=8)

conds = st.builds(Compare, st.sampled_from(["<", "<=", ">", ">=", "==",
                                            "!="]), exprs, exprs)


@st.composite
def programs(draw):
    body = []
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        body.append(Assign(draw(st.sampled_from(["a", "b", "t"])),
                           draw(exprs)))
    if draw(st.booleans()):
        body.append(If(cond=draw(conds), then=(Return(draw(exprs)),),
                       orelse=(Return(draw(exprs)),)))
    body.append(Return(draw(exprs)))
    return Program("p", ("a", "b"), tuple(body))


def run_or_none(program, args):
    try:
        return program(*args)
    except EvaluationError:
        return None


class TestInterpreterProperties:
    @given(programs(), st.integers(min_value=-10, max_value=10),
           st.integers(min_value=-10, max_value=10))
    @settings(max_examples=60)
    def test_execution_is_deterministic(self, program, a, b):
        assert run_or_none(program, (a, b)) == run_or_none(program, (a, b))

    @given(programs())
    @settings(max_examples=60)
    def test_all_sites_consistent_with_node_at(self, program):
        for path, node in all_sites(program):
            assert node_at(program, path) is node


class TestMutationProperties:
    @given(programs(), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=60)
    def test_mutants_are_valid_programs(self, program, seed):
        rng = random.Random(seed)
        mutant = mutate(program, rng)
        assert isinstance(mutant, Program)
        assert mutant.params == program.params
        # Mutants may crash but never produce malformed trees.
        run_or_none(mutant, (1, 2))

    @given(programs(), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=60)
    def test_mutation_never_aliases_the_original(self, program, seed):
        rng = random.Random(seed)
        before = program
        mutate(program, rng)
        assert program == before  # immutability: original unchanged

    @given(programs(), programs(), st.integers(min_value=0, max_value=500))
    @settings(max_examples=40)
    def test_crossover_children_are_valid(self, parent_a, parent_b, seed):
        rng = random.Random(seed)
        child = crossover(parent_a, parent_b, rng)
        assert isinstance(child, Program)
        run_or_none(child, (1, 2))


class TestReexpressionProperties:
    @given(st.integers(min_value=-10 ** 6, max_value=10 ** 6),
           st.integers(min_value=1, max_value=5))
    def test_exact_reexpression_preserves_output(self, x, k):
        period = 360

        def computation(v):
            return (v % period) ** 2

        program = Version("prog", impl=computation)
        shifted = shift_reexpression(period * k)
        expressed = shifted.transform((x,))
        assert program.execute(*expressed) == program.execute(x)

    @given(st.integers(min_value=-10 ** 6, max_value=10 ** 6))
    def test_reexpression_moves_the_input(self, x):
        shifted = shift_reexpression(17)
        assert shifted.transform((x,))[0] != x
