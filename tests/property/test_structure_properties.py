"""Property-based tests for robust structures, heap, snapshots, and
N-variant encodings."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

import pytest

from repro.environment import SimEnvironment
from repro.environment.memory import SimulatedHeap
from repro.exceptions import DataCorruptionDetected
from repro.techniques.data_diversity_security import default_encodings
from repro.techniques.robust_data import RobustLinkedList

values_strategy = st.lists(st.integers(), min_size=0, max_size=30)


class TestRobustListProperties:
    @given(values_strategy)
    def test_roundtrip(self, values):
        assert RobustLinkedList(values).to_list() == values

    @given(values_strategy)
    def test_healthy_audit_clean(self, values):
        assert RobustLinkedList(values).audit() == []

    @given(st.lists(st.integers(), min_size=2, max_size=25),
           st.data())
    def test_single_next_corruption_always_repairable(self, values, data):
        lst = RobustLinkedList(values)
        position = data.draw(st.integers(min_value=0,
                                         max_value=len(values) - 1))
        lst.corrupt_next(position)
        report = lst.repair()
        assert report.repaired
        assert lst.to_list() == values

    @given(st.lists(st.integers(), min_size=2, max_size=25),
           st.data())
    def test_single_prev_corruption_always_repairable(self, values, data):
        lst = RobustLinkedList(values)
        position = data.draw(st.integers(min_value=0,
                                         max_value=len(values) - 1))
        lst.corrupt_prev(position)
        report = lst.repair()
        assert report.repaired
        assert lst.to_list() == values

    @given(st.lists(st.integers(), min_size=1, max_size=25),
           st.integers(min_value=-100, max_value=100))
    def test_count_corruption_always_repairable(self, values, bogus):
        assume(bogus != len(values))
        lst = RobustLinkedList(values)
        lst.corrupt_count(bogus)
        assert lst.audit()
        assert lst.repair().repaired
        assert len(lst) == len(values)

    @given(values_strategy)
    def test_repair_is_idempotent(self, values):
        lst = RobustLinkedList(values)
        if len(values) >= 2:
            lst.corrupt_next(0)
        lst.repair()
        second = lst.repair()
        assert second.defects_found == 0


class TestHeapProperties:
    @given(st.lists(st.integers(min_value=1, max_value=10),
                    min_size=0, max_size=15))
    def test_allocated_cells_equal_sum_of_blocks(self, sizes):
        heap = SimulatedHeap(capacity=10_000)
        blocks = [heap.alloc(size) for size in sizes]
        assert heap.allocated_cells == sum(sizes)
        for block in blocks:
            heap.free(block)
        assert heap.allocated_cells == 0

    @given(st.lists(st.integers(min_value=1, max_value=10),
                    min_size=1, max_size=15))
    def test_blocks_never_overlap(self, sizes):
        heap = SimulatedHeap(capacity=10_000, default_pad=2)
        for size in sizes:
            heap.alloc(size)
        blocks = heap.blocks()
        for first, second in zip(blocks, blocks[1:]):
            assert first.end <= second.address

    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=8),
                              st.booleans()),
                    min_size=0, max_size=12))
    def test_capture_restore_is_exact(self, plan):
        heap = SimulatedHeap(capacity=10_000)
        for size, leak in plan:
            block = heap.alloc(size)
            if leak:
                heap.leak(block)
        state = heap.capture()
        heap.rejuvenate()
        heap.restore(state)
        assert heap.capture() == state


class TestEnvironmentSnapshotProperties:
    @given(st.integers(min_value=0, max_value=2 ** 31),
           st.lists(st.floats(min_value=0.0, max_value=10.0),
                    min_size=0, max_size=10))
    def test_snapshot_restore_preserves_age_and_heap(self, seed, works):
        env = SimEnvironment(seed=seed)
        for work in works:
            env.do_work(work)
        env.heap.alloc(4)
        snap = env.snapshot()
        env.do_work(99)
        env.heap.alloc(4)
        env.restore(snap)
        assert env.age == snap.age
        assert env.heap.capture() == snap.heap_state


class TestEncodingProperties:
    @given(st.integers(min_value=-2 ** 40, max_value=2 ** 40),
           st.integers(min_value=2, max_value=6),
           st.integers(min_value=0, max_value=100))
    def test_encodings_roundtrip(self, value, n, seed):
        for encoding in default_encodings(n, seed=seed):
            assert encoding.decode(encoding.encode(value)) == value

    @given(st.integers(min_value=0, max_value=2 ** 20),
           st.integers(min_value=2, max_value=6))
    def test_variants_disagree_on_concrete_values(self, value, n):
        encodings = default_encodings(n)
        concrete = [e.encode(value) for e in encodings]
        assert len(set(concrete)) == n
