"""Property-based tests for the pattern engines and stats invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adjudicators.acceptance import PredicateAcceptanceTest
from repro.components.version import Version
from repro.exceptions import (
    AllAlternativesFailedError,
    BohrbugFailure,
    NoMajorityError,
    RedundancyError,
)
from repro.patterns.base import GuardedUnit
from repro.patterns.parallel_evaluation import ParallelEvaluation
from repro.patterns.sequential_alternatives import SequentialAlternatives

# A version profile: (kind, value_offset) where kind in
# {"good", "wrong", "crash"}.
_profiles = st.lists(
    st.tuples(st.sampled_from(["good", "wrong", "crash"]),
              st.integers(min_value=1, max_value=5)),
    min_size=1, max_size=7)


def _build_versions(profiles):
    versions = []
    for index, (kind, offset) in enumerate(profiles):
        if kind == "good":
            impl = lambda x: x * 2
        elif kind == "wrong":
            impl = lambda x, o=offset, i=index: x * 2 + o + 100 * i
        else:
            def impl(x):
                raise BohrbugFailure("crash profile")
        versions.append(Version(f"v{index}-{kind}", impl=impl))
    return versions


class TestParallelEvaluationProperties:
    @given(_profiles, st.integers(min_value=0, max_value=100))
    @settings(max_examples=100)
    def test_majority_of_good_versions_guarantees_correctness(
            self, profiles, x):
        versions = _build_versions(profiles)
        good = sum(1 for kind, _ in profiles if kind == "good")
        pattern = ParallelEvaluation(versions)
        try:
            value = pattern.execute(x)
        except NoMajorityError:
            # No majority implies goodness did not reach a quorum.
            assert good <= len(profiles) // 2
            return
        if good >= len(profiles) // 2 + 1:
            assert value == x * 2

    @given(_profiles, st.integers(min_value=0, max_value=100))
    @settings(max_examples=100)
    def test_stats_invariants(self, profiles, x):
        pattern = ParallelEvaluation(_build_versions(profiles))
        try:
            pattern.execute(x)
        except RedundancyError:
            pass
        stats = pattern.stats
        assert stats.invocations == 1
        assert stats.executions == len(profiles)
        assert stats.adjudications == 1
        assert stats.masked_failures + stats.unmasked_failures <= \
            stats.executions + 1
        assert stats.execution_cost >= 0

    @given(_profiles, st.integers(min_value=0, max_value=100),
           st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=60)
    def test_version_order_does_not_change_the_verdict(self, profiles, x,
                                                       seed):
        versions = _build_versions(profiles)
        shuffled = list(versions)
        random.Random(seed).shuffle(shuffled)

        def outcome(vs):
            try:
                return ("ok", ParallelEvaluation(vs).execute(x))
            except NoMajorityError:
                return ("no-majority", None)

        assert outcome(versions) == outcome(shuffled)


class TestSequentialAlternativesProperties:
    @given(_profiles, st.integers(min_value=0, max_value=100))
    @settings(max_examples=100)
    def test_first_good_version_decides(self, profiles, x):
        versions = _build_versions(profiles)
        acceptance = PredicateAcceptanceTest(
            lambda args, v: v == args[0] * 2)
        units = [GuardedUnit(v, acceptance) for v in versions]
        pattern = SequentialAlternatives(units)
        kinds = [kind for kind, _ in profiles]
        try:
            value = pattern.execute(x)
        except AllAlternativesFailedError:
            assert "good" not in kinds
            return
        assert value == x * 2
        # Executions = position of the first good version + 1.
        assert pattern.stats.executions == kinds.index("good") + 1

    @given(_profiles, st.integers(min_value=0, max_value=100))
    @settings(max_examples=100)
    def test_masked_plus_unmasked_bounded(self, profiles, x):
        versions = _build_versions(profiles)
        acceptance = PredicateAcceptanceTest(
            lambda args, v: v == args[0] * 2)
        pattern = SequentialAlternatives(
            [GuardedUnit(v, acceptance) for v in versions])
        try:
            pattern.execute(x)
        except AllAlternativesFailedError:
            pass
        stats = pattern.stats
        assert stats.executions <= len(profiles)
        assert stats.adjudications == stats.executions
