"""Property-based tests for the telemetry snapshot/merge algebra.

The metrics merge must be commutative and associative (workers fold
back in any grouping without changing totals); the tracer and bus
merges are associative but order-sensitive by design — history follows
merge order, which the parallel runtime pins to submission order.
Values are integer-valued floats so float summation is exact and the
algebraic claims are exact equalities, not approximations.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observe import EventBus, MetricsRegistry, Tracer

names = st.sampled_from(("a_total", "b_total", "depth", "lat"))
labels = st.dictionaries(st.sampled_from(("k", "t")),
                         st.sampled_from(("x", "y")), max_size=2)
amounts = st.integers(min_value=0, max_value=50).map(float)

counter_ops = st.tuples(st.just("counter"), st.sampled_from(("c_total",)),
                        labels, amounts)
gauge_ops = st.tuples(st.just("gauge"), st.sampled_from(("depth",)),
                      labels, amounts)
hist_ops = st.tuples(st.just("hist"), st.sampled_from(("lat",)),
                     labels, amounts)
ops_strategy = st.lists(st.one_of(counter_ops, gauge_ops, hist_ops),
                        max_size=12)


def registry_from(ops):
    registry = MetricsRegistry()
    for kind, name, label_map, amount in ops:
        if kind == "counter":
            registry.inc(name, amount, **label_map)
        elif kind == "gauge":
            registry.gauge(name, **label_map).add(amount)
        else:
            registry.observe(name, amount, **label_map)
    return registry


def merged(*snapshots):
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.merge(snapshot)
    return registry.snapshot()


@settings(max_examples=60)
@given(ops_strategy, ops_strategy)
def test_metrics_merge_commutes(ops_a, ops_b):
    a = registry_from(ops_a).snapshot()
    b = registry_from(ops_b).snapshot()
    assert merged(a, b) == merged(b, a)


@settings(max_examples=60)
@given(ops_strategy, ops_strategy, ops_strategy)
def test_metrics_merge_is_associative(ops_a, ops_b, ops_c):
    a = registry_from(ops_a).snapshot()
    b = registry_from(ops_b).snapshot()
    c = registry_from(ops_c).snapshot()
    left = MetricsRegistry()
    left.merge(merged(a, b))
    left.merge(c)
    right = MetricsRegistry()
    right.merge(a)
    right.merge(merged(b, c))
    assert left.snapshot() == right.snapshot()


@settings(max_examples=60)
@given(ops_strategy, ops_strategy)
def test_metrics_merge_equals_recording_in_one_registry(ops_a, ops_b):
    together = registry_from(list(ops_a) + list(ops_b)).snapshot()
    a = registry_from(ops_a).snapshot()
    b = registry_from(ops_b).snapshot()
    assert merged(a, b) == together


span_lists = st.lists(st.sampled_from(("u", "v", "w")), max_size=5)


def tracer_from(span_names):
    tracer = Tracer()
    for name in span_names:
        with tracer.span(name, cost=1.0):
            pass
    return tracer


@settings(max_examples=40)
@given(span_lists, span_lists, span_lists)
def test_tracer_merge_is_associative(names_a, names_b, names_c):
    def fold_left():
        t = tracer_from(names_a)
        t.merge(tracer_from(names_b).snapshot())
        t.merge(tracer_from(names_c).snapshot())
        return [s.to_dict() for s in t.spans], t.started

    def fold_right():
        middle = tracer_from(names_b)
        middle.merge(tracer_from(names_c).snapshot())
        t = tracer_from(names_a)
        t.merge(middle.snapshot())
        return [s.to_dict() for s in t.spans], t.started

    assert fold_left() == fold_right()


topic_lists = st.lists(st.sampled_from(("x", "y", "z.w")), max_size=6)


def bus_from(topics):
    bus = EventBus()
    for topic in topics:
        bus.publish(topic, n=1)
    return bus


@settings(max_examples=40)
@given(topic_lists, topic_lists, topic_lists)
def test_bus_merge_is_associative(topics_a, topics_b, topics_c):
    def fold_left():
        bus = bus_from(topics_a)
        bus.merge(bus_from(topics_b).snapshot())
        bus.merge(bus_from(topics_c).snapshot())
        return bus.snapshot()

    def fold_right():
        middle = bus_from(topics_b)
        middle.merge(bus_from(topics_c).snapshot())
        bus = bus_from(topics_a)
        bus.merge(middle.snapshot())
        return bus.snapshot()

    assert fold_left() == fold_right()


@settings(max_examples=40)
@given(topic_lists, topic_lists)
def test_bus_counts_commute(topics_a, topics_b):
    left = bus_from(topics_a)
    left.merge(bus_from(topics_b).snapshot())
    right = bus_from(topics_b)
    right.merge(bus_from(topics_a).snapshot())
    assert left.counts == right.counts
    assert left.published == right.published
