"""Property-based differential testing of the diverse engines.

The replication argument rests on the engines being *functionally
equivalent*: any statement sequence must leave all three with identical
logical state and identical (canonicalised) results.  Hypothesis
generates random statement sequences and checks exactly that — the same
differential oracle a multi-version deployment relies on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SimulatedFailure
from repro.sqlstore.engines import (
    AppendLogEngine,
    HashIndexEngine,
    SortedStoreEngine,
)
from repro.sqlstore.query import Delete, Insert, Select, Update, eq, gt, lt
from repro.sqlstore.replicated import canonical_result

ALL_ENGINES = (HashIndexEngine, AppendLogEngine, SortedStoreEngine)

_keys = st.integers(min_value=0, max_value=12)
_values = st.integers(min_value=-50, max_value=50)
_columns = st.sampled_from(["score", "rank"])


def _predicates():
    return st.one_of(
        st.builds(eq, _columns, _values),
        st.builds(lt, _columns, _values),
        st.builds(gt, _columns, _values),
        st.builds(eq, st.just("id"), _keys),
    )


def _statements():
    return st.one_of(
        st.builds(lambda k, v: Insert.of(id=k, score=v), _keys, _values),
        st.builds(Select, where=st.one_of(st.none(), _predicates()),
                  order_by=st.sampled_from([None, "id", "score"])),
        st.builds(lambda w, v: Update.set(w, rank=v), _predicates(),
                  _values),
        st.builds(Delete, where=_predicates()),
    )


def _apply(engine, statement):
    try:
        return ("ok", engine.execute(statement))
    except SimulatedFailure as exc:
        return ("err", type(exc).__name__)


class TestEngineEquivalence:
    @given(st.lists(_statements(), min_size=0, max_size=25))
    @settings(max_examples=120, deadline=None)
    def test_all_engines_agree_on_state_and_results(self, statements):
        engines = [cls() for cls in ALL_ENGINES]
        for statement in statements:
            replies = [_apply(engine, statement) for engine in engines]
            canonical = set()
            for kind, payload in replies:
                if kind == "ok":
                    canonical.add(("ok",
                                   canonical_result(statement, payload)))
                else:
                    canonical.add(("err", payload))
            assert len(canonical) == 1, (statement, replies)
        dumps = [engine.dump() for engine in engines]
        assert dumps[0] == dumps[1] == dumps[2]

    @given(st.lists(_statements(), min_size=0, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_dump_reload_roundtrip(self, statements):
        for cls in ALL_ENGINES:
            engine = cls()
            for statement in statements:
                try:
                    engine.execute(statement)
                except SimulatedFailure:
                    pass
            snapshot = engine.dump()
            fresh = cls()
            fresh.load(snapshot)
            assert fresh.dump() == snapshot
