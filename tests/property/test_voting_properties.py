"""Property-based tests for voting adjudicators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adjudicators.voting import (
    ConsensusVoter,
    MajorityVoter,
    MedianVoter,
    PluralityVoter,
    UnanimousVoter,
)
from repro.exceptions import SimulatedFailure
from repro.result import Outcome


def outcomes_from(values):
    """values: list of ints (successes) and None (failures)."""
    out = []
    for i, value in enumerate(values):
        if value is None:
            out.append(Outcome.failure(SimulatedFailure("x"),
                                       producer=f"p{i}"))
        else:
            out.append(Outcome.success(value, producer=f"p{i}"))
    return out


values_strategy = st.lists(
    st.one_of(st.integers(min_value=0, max_value=5), st.none()),
    min_size=0, max_size=9)


@given(values_strategy)
def test_majority_winner_has_quorum(values):
    outcomes = outcomes_from(values)
    verdict = MajorityVoter().adjudicate(outcomes)
    if verdict.accepted:
        agreeing = sum(1 for v in values if v == verdict.value)
        assert agreeing >= len(values) // 2 + 1
        assert len(verdict.supporters) == agreeing


@given(values_strategy)
def test_majority_invariant_under_permutation(values):
    outcomes = outcomes_from(values)
    forward = MajorityVoter().adjudicate(outcomes)
    backward = MajorityVoter().adjudicate(list(reversed(outcomes)))
    assert forward.accepted == backward.accepted
    if forward.accepted:
        assert forward.value == backward.value


@given(values_strategy)
def test_majority_acceptance_implies_plurality_acceptance(values):
    outcomes = outcomes_from(values)
    if MajorityVoter().adjudicate(outcomes).accepted:
        plurality = PluralityVoter().adjudicate(outcomes)
        assert plurality.accepted
        assert plurality.value == MajorityVoter().adjudicate(outcomes).value


@given(values_strategy)
def test_unanimous_acceptance_implies_majority_acceptance(values):
    outcomes = outcomes_from(values)
    if UnanimousVoter().adjudicate(outcomes).accepted:
        assert MajorityVoter().adjudicate(outcomes).accepted


@given(values_strategy, st.integers(min_value=1, max_value=9))
def test_consensus_monotone_in_quorum(values, quorum):
    """If m-of-n accepts, then (m-1)-of-n accepts the same value."""
    outcomes = outcomes_from(values)
    strict = ConsensusVoter(quorum=quorum + 1).adjudicate(outcomes)
    if strict.accepted:
        relaxed = ConsensusVoter(quorum=quorum).adjudicate(outcomes)
        assert relaxed.accepted


@given(st.lists(st.integers(min_value=-100, max_value=100),
                min_size=1, max_size=9))
def test_median_value_is_bracketed(values):
    outcomes = outcomes_from(values)
    verdict = MedianVoter().adjudicate(outcomes)
    assert verdict.accepted
    assert min(values) <= verdict.value <= max(values)


@given(values_strategy)
def test_supporters_and_dissenters_partition_producers(values):
    outcomes = outcomes_from(values)
    verdict = MajorityVoter().adjudicate(outcomes)
    if verdict.accepted:
        names = set(verdict.supporters) | set(verdict.dissenters)
        assert names == {o.producer for o in outcomes}
        assert not set(verdict.supporters) & set(verdict.dissenters)


@given(values_strategy)
def test_all_failures_never_accepted(values):
    only_failures = [None] * len(values)
    outcomes = outcomes_from(only_failures)
    for voter in (MajorityVoter(), PluralityVoter(), UnanimousVoter(),
                  MedianVoter(), ConsensusVoter(quorum=1)):
        assert not voter.adjudicate(outcomes).accepted
