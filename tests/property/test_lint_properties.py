"""Property tests for the diversity score.

The issue's contract for the score backing DIV001: symmetric, bounded
in [0, 1], ≈1.0 for identical sources, and — because the whole point of
the linter is catching ``PYTHONHASHSEED`` dependence — itself stable
across hash seeds.
"""

import json
import os
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint import (
    ast_fingerprint,
    diversity,
    pairwise_similarity,
    similarity,
)

#: Statement templates over two identifier slots and one constant slot.
_TEMPLATES = (
    "    {a} = {a} + {k}",
    "    {b} = {a} * {k} - {b}",
    "    if {a} > {k}:",
    "        {b} = {b} - {k}",
    "    for {b} in range({k}):",
    "        {a} = {a} + {b}",
    "    {a}, {b} = {b}, {a} + {k}",
)


def render(steps, name_a="left", name_b="right"):
    """A small function source from (template_index, constant) pairs.

    Indentation is repaired so every generated source is valid Python:
    a nested line only follows an ``if``/``for`` header, and a header
    is never left without a body.
    """
    body = []
    after_header = False
    for index, constant in steps:
        line = _TEMPLATES[index].format(a=name_a, b=name_b, k=constant)
        nested = line.startswith("        ")
        if after_header and not nested:
            body.append("        pass")
        if nested and not after_header:
            line = line[4:]
        body.append(line)
        after_header = line.rstrip().endswith(":")
    if after_header:
        body.append("        pass")
    return (f"def f({name_a}, {name_b}):\n" + "\n".join(body)
            + f"\n    return {name_a}\n")


steps_strategy = st.lists(
    st.tuples(st.integers(0, len(_TEMPLATES) - 1),
              st.integers(0, 9)),
    min_size=1, max_size=10)


@given(steps_strategy, steps_strategy)
@settings(max_examples=60, deadline=None)
def test_similarity_is_symmetric_and_bounded(steps_a, steps_b):
    source_a, source_b = render(steps_a), render(steps_b)
    forward = similarity(source_a, source_b)
    assert forward == similarity(source_b, source_a)
    assert 0.0 <= forward <= 1.0
    assert diversity(source_a, source_b) == 1.0 - forward


@given(steps_strategy)
@settings(max_examples=60, deadline=None)
def test_identical_sources_score_one(steps):
    source = render(steps)
    assert similarity(source, source) == 1.0
    assert diversity(source, source) == 0.0


@given(steps_strategy)
@settings(max_examples=60, deadline=None)
def test_renaming_does_not_create_diversity(steps):
    """A rename-only "independent version" is not diverse at all."""
    original = render(steps, "left", "right")
    renamed = render(steps, "first", "second")
    assert similarity(original, renamed) == 1.0
    assert ast_fingerprint(original) == ast_fingerprint(renamed)


@given(st.lists(steps_strategy, min_size=1, max_size=4))
@settings(max_examples=30, deadline=None)
def test_pairwise_matrix_is_symmetric_with_unit_diagonal(all_steps):
    sources = [render(steps) for steps in all_steps]
    matrix = pairwise_similarity(sources)
    for i in range(len(sources)):
        assert matrix[i][i] == 1.0
        for j in range(len(sources)):
            assert matrix[i][j] == matrix[j][i]
            assert 0.0 <= matrix[i][j] <= 1.0


_STABILITY_SCRIPT = """
import json, sys
from repro.lint import ast_fingerprint, similarity

a = "def f(x):\\n    return hash(x) % 31\\n"
b = "def g(y):\\n    return (y * 31) % 7\\n"
print(json.dumps({"sim": similarity(a, b), "self": similarity(a, a),
                  "fp": ast_fingerprint(a)}))
"""


def _score_under_hashseed(seed):
    env = dict(os.environ, PYTHONHASHSEED=seed,
               PYTHONPATH=os.pathsep.join(
                   filter(None, [os.path.join(os.path.dirname(__file__),
                                              os.pardir, os.pardir, "src"),
                                 os.environ.get("PYTHONPATH", "")])))
    out = subprocess.run([sys.executable, "-c", _STABILITY_SCRIPT],
                         capture_output=True, text=True, env=env,
                         check=True)
    return json.loads(out.stdout)


def test_scores_are_stable_across_pythonhashseed():
    """The diversity score must not suffer the bug class it polices."""
    runs = [_score_under_hashseed(seed) for seed in ("0", "1", "31337")]
    assert runs[0]["self"] == 1.0
    assert runs[0] == runs[1] == runs[2]
