"""Property-based tests for the analytic models."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.analysis.markov import MarkovChain
from repro.analysis.reliability import (
    correlated_vote_reliability,
    k_tolerance,
    series_availability,
    substitution_availability,
    vote_reliability,
)

probabilities = st.floats(min_value=0.0, max_value=1.0,
                          allow_nan=False, allow_infinity=False)


@st.composite
def stochastic_chains(draw):
    """A random 3-state DTMC with strictly positive self-loops (ergodic
    enough for power iteration)."""
    states = ["a", "b", "c"]
    transitions = {}
    for state in states:
        weights = [draw(st.floats(min_value=0.1, max_value=1.0))
                   for _ in states]
        total = sum(weights)
        transitions[state] = {s: w / total
                              for s, w in zip(states, weights)}
    return MarkovChain(states, transitions)


class TestMarkovProperties:
    @given(stochastic_chains())
    @settings(max_examples=50)
    def test_steady_state_is_a_distribution(self, chain):
        pi = chain.steady_state()
        assert sum(pi.values()) == pytest.approx(1.0, abs=1e-6)
        assert all(value >= -1e-12 for value in pi.values())

    @given(stochastic_chains())
    @settings(max_examples=50)
    def test_steady_state_is_a_fixed_point(self, chain):
        pi = chain.steady_state()
        vector = [pi[s] for s in chain.states]
        stepped = chain.step(vector)
        for before, after in zip(vector, stepped):
            assert after == pytest.approx(before, abs=1e-6)

    @given(stochastic_chains())
    @settings(max_examples=30)
    def test_availability_bounded(self, chain):
        availability = chain.availability(["a", "b"])
        assert 0.0 <= availability <= 1.0 + 1e-9


class TestReliabilityProperties:
    @given(st.integers(min_value=1, max_value=11).filter(lambda n: n % 2),
           probabilities)
    def test_vote_reliability_is_a_probability(self, n, p):
        assert 0.0 <= vote_reliability(n, p) <= 1.0 + 1e-12

    @given(st.integers(min_value=1, max_value=9).filter(lambda n: n % 2),
           st.floats(min_value=0.01, max_value=0.99))
    def test_vote_reliability_decreases_in_p(self, n, p):
        worse = min(0.99, p + 0.2)
        assert vote_reliability(n, worse) <= vote_reliability(n, p) + 1e-12

    @given(st.integers(min_value=3, max_value=9).filter(lambda n: n % 2),
           st.floats(min_value=0.02, max_value=0.2),
           st.floats(min_value=0.0, max_value=0.9))
    def test_correlation_hurts_in_the_high_reliability_regime(self, n, p,
                                                              rho):
        # Brilliant et al.'s erosion is a *high-reliability-regime*
        # property (per-version p well below 1/2).  At larger p the
        # common shock concentrates failures into rare total outages and
        # can even help the vote — a genuine model subtlety found by
        # this property test at p≈0.38.
        assert (correlated_vote_reliability(n, p, rho)
                <= vote_reliability(n, p) + 1e-9)

    @given(st.integers(min_value=1, max_value=9))
    def test_k_tolerance_inverts_2k_plus_1(self, k):
        assert k_tolerance(2 * k + 1) == k

    @given(st.lists(probabilities, min_size=1, max_size=6))
    def test_substitution_dominates_every_single_alternate(self, avail):
        combined = substitution_availability(tuple(avail))
        assert combined >= max(avail) - 1e-12
        assert 0.0 <= combined <= 1.0

    @given(st.lists(probabilities, min_size=1, max_size=6))
    def test_series_is_dominated_by_every_element(self, avail):
        combined = series_availability(tuple(avail))
        assert combined <= min(avail) + 1e-12

    @given(st.lists(probabilities, min_size=1, max_size=6))
    def test_substitution_at_least_series(self, avail):
        assert (substitution_availability(tuple(avail))
                >= series_availability(tuple(avail)) - 1e-12)
