"""Helper layer for the deep-analysis fixtures (leaf + mid levels).

Every *leaf* here carries exactly one hazard that the per-module lint
rules cannot see from the entry points in
:mod:`tests.fixtures.deep_planted` — either because the hazard is
syntactically invisible to them (the ``_wall`` import alias), or
because no local rule covers it at all (``uuid4``, ``os.getenv`` as a
call, lock construction outside a map call-site, module-global
mutation).  Each *mid*-level wrapper adds one call hop, so the entry
points sit two hops from the hazard and only the whole-program pass
connects them.

Do not "fix" these: tests pin the exact findings.
"""

from time import time as _wall  # alias hides the clock from DET002

import os
import threading
import uuid

_LEDGER = []


# -- leaves: one concrete hazard each ---------------------------------------

def stamp():
    return _wall()


def fresh_token():
    return uuid.uuid4().hex


def host_home():
    return os.getenv("HOME", "/nonexistent")


def make_gate():
    return threading.Lock()


def record(value):
    _LEDGER.append(value)
    return len(_LEDGER)


# -- mids: one call hop above each leaf -------------------------------------

def annotate(value):
    return (value, stamp())


def labelled(value):
    return "%s:%r" % (fresh_token(), value)


def homed(value):
    return (host_home(), value)


def gated(value):
    return (make_gate(), value)


def audited(value):
    return record(value) + value


# -- clean control path -----------------------------------------------------

def doubled(value):
    return value * 2
