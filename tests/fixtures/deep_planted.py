"""Entry points for the deep-analysis fixtures.

Each ``*_trial`` below is hazard-free *locally* — every per-module
rule passes it — but transitively reaches one hazard planted two call
hops away in :mod:`tests.fixtures.deep_helpers`:

==================  ========  =========================================
clock_trial         XDET001   aliased ``time.time`` via annotate→stamp
entropy_trial       XDET002   ``uuid.uuid4`` via labelled→fresh_token
env_trial           XDET003   ``os.getenv`` via homed→host_home
pickle_trial        XPROC001  ``threading.Lock()`` via gated→make_gate
impure_trial        XPROC002  mutates ``_LEDGER`` via audited→record
clean_trial         (none)    seeded RNG only; certifies clean
==================  ========  =========================================

Do not "fix" these: tests pin the exact findings, and the certify
tests run ``clean_trial`` / ``impure_trial`` live.
"""

import random

from tests.fixtures.deep_helpers import (
    annotate,
    audited,
    doubled,
    gated,
    homed,
    labelled,
)


def clock_trial(seed):
    return {"value": float(annotate(seed * 3)[1])}


def entropy_trial(seed):
    return {"value": float(len(labelled(seed + 1)))}


def env_trial(seed):
    return {"value": float(len(homed(seed - 1)[0]))}


def pickle_trial(seed):
    return {"value": float(gated(seed % 7)[1])}


def impure_trial(seed):
    return {"value": float(audited(seed))}


def clean_trial(seed):
    rng = random.Random(seed)  # lint: allow[DET006]
    return {"value": float(doubled(sum(rng.randrange(100)
                                       for _ in range(4))))}
