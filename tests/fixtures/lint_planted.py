"""Planted lint fixture: exactly one finding per planted defect.

``tests/unit/test_lint_cli.py`` pins the linter's JSON output against
this module, which deliberately contains

* a near-clone pair (``median_filter_a`` / ``median_filter_b``) — the
  correlated-fault risk DIV001 exists for,
* one unseeded ``random.random()`` call (DET001),
* one even-sized voting set (PAT001),
* one hand-seeded ``random.Random(seed)`` inside a trial function
  (DET006),

and nothing else the linter objects to.  Don't "fix" these.
"""

import random

from repro.techniques.nvp import NVersionProgramming


def median_filter_a(values, window):
    """Smooth a series with a sliding median."""
    if window <= 0:
        raise ValueError("window must be positive")
    smoothed = []
    for i in range(len(values)):
        lo = max(0, i - window)
        hi = min(len(values), i + window + 1)
        neighborhood = sorted(values[lo:hi])
        smoothed.append(neighborhood[len(neighborhood) // 2])
    return smoothed


def median_filter_b(series, span):
    """Smooth a series with a sliding median ("independent" team B)."""
    if span < 1:
        raise ValueError("span must be positive")
    output = []
    for index in range(len(series)):
        start = max(0, index - span)
        stop = min(len(series), index + span + 1)
        window_values = sorted(series[start:stop])
        output.append(window_values[len(window_values) // 2])
    return output


def jittered(value):
    """Adds noise from the shared global RNG — the DET001 plant."""
    return value + random.random()


def noisy_trial(seed):
    """Hand-rolls its own seed derivation — the DET006 plant."""
    rng = random.Random(seed * 31 + 7)
    return {"value": rng.random()}


def build_four_version_voter(versions):
    """Wires an even voting set — the PAT001 plant."""
    return NVersionProgramming(
        [versions[0], versions[1], versions[2], versions[3]])
