"""Soak test: a long randomized scenario over a full protection stack.

A composite application (replicated store + substitutable services +
micro-rebooted components + RX-guarded computation) is driven by a
seeded random workload for a few thousand operations.  The assertions
are invariants, not exact values: virtual time only moves forward, no
exception other than the documented redundancy-exhaustion errors ever
escapes, state stays consistent, and the system ends healthy.
"""

import random

import pytest

from repro.components.component import RestartableComponent
from repro.components.interface import FunctionSpec
from repro.environment import SimEnvironment
from repro.exceptions import (
    AllAlternativesFailedError,
    NoMajorityError,
    RedundancyError,
    SimulatedFailure,
)
from repro.faults.development import Heisenbug
from repro.faults.environmental import LoadBug
from repro.faults.injector import FaultyFunction
from repro.services.broker import ServiceBroker
from repro.services.registry import ServiceRegistry
from repro.services.service import Service
from repro.sqlstore.engines import diverse_engine_pool
from repro.sqlstore.query import Insert, Select, Update, eq
from repro.sqlstore.replicated import ReplicatedStore
from repro.techniques import (
    DynamicServiceSubstitution,
    EnvironmentPerturbation,
    MicroReboot,
    ModularApplication,
)

OPERATIONS = 2500
SPEC = FunctionSpec("price", arity=1)


@pytest.mark.parametrize("seed", [11, 29])
def test_soak_full_stack(seed):
    rng = random.Random(seed)
    env = SimEnvironment(seed=seed)

    # Substrate 1: a replicated store.
    store = ReplicatedStore(diverse_engine_pool())

    # Substrate 2: substitutable pricing services.
    registry = ServiceRegistry()
    for i, availability in enumerate((0.7, 0.8, 0.95)):
        registry.publish(Service(f"price-{i}", SPEC,
                                 impl=lambda sku: sku * 2,
                                 availability=availability))
    pricing = DynamicServiceSubstitution(SPEC, ServiceBroker(registry))

    # Substrate 3: a crashy session component under micro-reboot.
    sessions = RestartableComponent(
        "sessions",
        lambda c, request, e: c.state.data.setdefault("seen", []).append(
            request) or len(c.state.data["seen"]),
        initializer=lambda: {"seen": []},
        faults=[Heisenbug("session-race", probability=0.03)])
    reboots = MicroReboot(ModularApplication([sessions]), env=env)

    # Substrate 4: an RX-guarded load-sensitive computation.
    flaky = FaultyFunction(lambda x: x * 3,
                           faults=[LoadBug("overrun", probability=0.6)])
    rx = EnvironmentPerturbation(lambda x, env=None: flaky(x, env=env),
                                 env)

    inserted = set()
    redundancy_exhausted = 0
    last_time = env.clock.now

    for step in range(OPERATIONS):
        action = rng.randrange(4)
        try:
            if action == 0:
                key = rng.randrange(500)
                if key in inserted:
                    store.execute(Update.set(eq("id", key),
                                             touch=step), env=env)
                else:
                    store.execute(Insert.of(id=key, v=step), env=env)
                    inserted.add(key)
            elif action == 1:
                price = pricing.invoke(rng.randrange(100), env=env)
                assert price % 2 == 0
            elif action == 2:
                reboots.handle("sessions", step)
            else:
                assert rx.execute(step) == step * 3
        except (AllAlternativesFailedError, NoMajorityError):
            redundancy_exhausted += 1
        # Invariant: virtual time never goes backwards.
        assert env.clock.now >= last_time
        last_time = env.clock.now

    # The redundancy held up for the overwhelming majority of operations.
    assert redundancy_exhausted < OPERATIONS * 0.05

    # The store's replicas agree and reflect every insert.
    assert store.diverged_replicas() == []
    rows = store.execute(Select())
    assert {r["id"] for r in rows} == inserted

    # The session component is healthy (or rebootable) at the end.
    if sessions.down:
        sessions.restart()
    assert reboots.handle("sessions", "final") >= 1

    # The environment is coherent.
    description = env.describe()
    assert description["time"] == env.clock.now
    assert env.heap.pressure <= 1.0
