"""Docs/benchmark consistency: DESIGN.md, the CLI experiment index, and
the benchmark files must name the same artifacts."""

import pathlib
import re

from repro.cli import EXPERIMENT_INDEX

ROOT = pathlib.Path(__file__).resolve().parents[2]


def _bench_files_on_disk():
    return {path.name for path in (ROOT / "benchmarks").glob("bench_*.py")}


class TestExperimentIndex:
    def test_every_indexed_bench_exists(self):
        on_disk = _bench_files_on_disk()
        for eid, _, bench in EXPERIMENT_INDEX:
            assert bench in on_disk, f"{eid} points at missing {bench}"

    def test_every_bench_is_indexed(self):
        indexed = {bench for _, _, bench in EXPERIMENT_INDEX}
        assert _bench_files_on_disk() == indexed


class TestDesignDocument:
    def test_design_references_every_bench(self):
        design = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
        for bench in _bench_files_on_disk():
            assert bench in design, f"DESIGN.md does not mention {bench}"

    def test_design_lists_all_seventeen_techniques(self):
        from repro.taxonomy.paper import PAPER_TABLE2
        design = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
        for entry in PAPER_TABLE2:
            assert entry.name in design, entry.name


class TestExperimentsDocument:
    def test_every_experiment_id_has_a_row(self):
        experiments = (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        for eid, _, _ in EXPERIMENT_INDEX:
            assert re.search(rf"\|\s*{eid}\s*\|", experiments), (
                f"EXPERIMENTS.md lacks a row for {eid}")

    def test_readme_links_the_docs(self):
        readme = (ROOT / "README.md").read_text(encoding="utf-8")
        assert "DESIGN.md" in readme
        assert "EXPERIMENTS.md" in readme
