"""Integration: every example script runs to completion.

The examples double as end-to-end tests of the public API: each one
asserts its own success criteria internally, so a zero exit status means
the documented scenario actually works.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=180)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must narrate what they did"
