"""Integration: redundancy mechanisms compose.

The paper's architectural discussion treats techniques as patterns that
can nest: a recovery block's alternates may themselves be N-version
systems, an RX-protected operation can sit behind a rule engine, a
rejuvenated environment can host checkpointed execution.  These tests
exercise such stacks end to end.
"""

import pytest

from repro.adjudicators.acceptance import PredicateAcceptanceTest
from repro.components.library import diverse_versions
from repro.components.state import DictState
from repro.components.version import Version
from repro.environment import SimEnvironment
from repro.exceptions import (
    AllAlternativesFailedError,
    NoMajorityError,
    ServiceFailure,
    SimulatedFailure,
)
from repro.faults.development import Bohrbug, Heisenbug, InputRegion
from repro.faults.environmental import OverflowBug
from repro.faults.injector import FaultyFunction
from repro.techniques import (
    DataDiversity,
    EnvironmentPerturbation,
    NVersionProgramming,
    RecoveryBlocks,
    RuleEngine,
)
from repro.techniques.data_diversity import shift_reexpression
from repro.techniques.rule_engine import (
    RecoveryRegistry,
    RecoveryRule,
    substitute_value_action,
)


def oracle(x):
    return x * 5


class TestNvpInsideRecoveryBlocks:
    """A recovery block whose primary is an entire NVP system."""

    def _stack(self):
        # The primary NVP population is so bad that votes often fail...
        weak_nvp = NVersionProgramming(
            diverse_versions(oracle, 3, 0.45, seed=3))
        # ...while the alternate is a single solid implementation.
        solid = Version("golden", impl=oracle)

        primary = Version(
            "nvp-front", impl=lambda x: weak_nvp.execute(x),
            design_cost=300.0)
        acceptance = PredicateAcceptanceTest(
            lambda args, v: v == oracle(args[0]))
        return RecoveryBlocks([primary, solid], acceptance), weak_nvp

    def test_vote_failures_are_absorbed_by_the_block(self):
        rb, weak_nvp = self._stack()
        ok = 0
        for x in range(300):
            try:
                ok += rb.execute(x) == oracle(x)
            except AllAlternativesFailedError:
                pass
        assert ok == 300
        # The NVP layer did reject some votes; the block masked them.
        assert weak_nvp.stats.unmasked_failures > 0


class TestDataDiversityInsideNvp:
    """N versions, each wrapped in retry-block data diversity."""

    def test_region_faults_cleared_before_the_vote(self):
        period = 100

        def periodic(x):
            return (x % period) * 7

        versions = []
        for i in range(3):
            inner = Version(
                f"v{i}", impl=periodic,
                faults=[Bohrbug(f"v{i}-region",
                                region=InputRegion(10 * i, 10 * i + 5))])
            dd = DataDiversity(inner, [shift_reexpression(period)])
            versions.append(Version(f"dd-{i}",
                                    impl=lambda x, dd=dd:
                                    dd.execute_retry(x)))
        nvp = NVersionProgramming(versions)
        # Inputs inside every version's region: all recovered, unanimous.
        for x in (2, 12, 22, 77):
            assert nvp.execute(x) == periodic(x)
        assert nvp.stats.masked_failures == 0  # diversity healed below


class TestRuleEngineOverRx:
    """Exception handling as the outer layer, RX as a recovery rule."""

    def test_rx_rule_heals_overflow_then_default_rule_covers_rest(self):
        env = SimEnvironment(seed=6)
        flaky = FaultyFunction(
            lambda x: x + 1,
            faults=[OverflowBug("ovf", overflow_cells=4,
                                trigger_modulo=2)])
        rx = EnvironmentPerturbation(
            lambda x, env=None: flaky(x, env=env), env)

        registry = RecoveryRegistry()
        registry.add(RecoveryRule(
            "rx", (SimulatedFailure,),
            lambda args, e, exc: rx.execute(*args), priority=1))
        registry.add(RecoveryRule(
            "degrade", (SimulatedFailure,),
            substitute_value_action(-1), priority=2))

        engine = RuleEngine(
            lambda x, env=None: flaky(x, env=env), registry)
        results = [engine.execute(x, env=env) for x in range(20)]
        # Even inputs trigger the overflow; RX healed all of them, so
        # the degrade rule was never needed.
        assert results == [x + 1 for x in range(20)]
        assert rx.recoveries > 0


class TestRejuvenatedCheckpointing:
    """Checkpoint-recovery inside a preventively rejuvenated environment."""

    def test_rejuvenation_reduces_rollbacks(self):
        from repro.techniques import CheckpointRecovery, Rejuvenation
        from repro.techniques.rejuvenation import RejuvenationPolicy

        def run(with_rejuvenation):
            env = SimEnvironment(seed=9)
            bug = Heisenbug("race", probability=0.02, aging_factor=0.002)
            task = FaultyFunction(lambda: None, faults=[bug], cost=1.0)
            rejuvenator = Rejuvenation(env,
                                       RejuvenationPolicy(max_age=25))

            def step(e):
                if with_rejuvenation:
                    rejuvenator.maybe_rejuvenate()
                task(env=e)

            cr = CheckpointRecovery(env, interval=5,
                                    max_rollbacks_per_step=100_000)
            report = cr.run([step] * 120)
            assert report.completed
            return report.rollbacks

        assert run(True) < run(False)
