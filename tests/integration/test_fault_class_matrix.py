"""Integration: the 'Faults' column of Table 2 as executable claims.

For each technique, check that it actually handles the fault class the
paper assigns to it — and, where the paper is explicit, that it does NOT
handle classes outside its reach (e.g. checkpoint-recovery "does not work
well for Bohrbugs", process replicas "do not seem well suited to deal
with other types of faults").
"""

import pytest

from repro.adjudicators.acceptance import PredicateAcceptanceTest
from repro.components.library import diverse_versions
from repro.components.version import Version
from repro.environment import SimEnvironment
from repro.exceptions import (
    AllAlternativesFailedError,
    AttackDetectedError,
    NoMajorityError,
)
from repro.faults.development import Bohrbug, Heisenbug, InputRegion
from repro.faults.environmental import OverflowBug
from repro.faults.injector import FaultyFunction
from repro.faults.malicious import absolute_address_attack, benign_request
from repro.techniques import (
    CheckpointRecovery,
    DataDiversity,
    EnvironmentPerturbation,
    NVersionProgramming,
    ProcessReplicas,
    RecoveryBlocks,
)
from repro.techniques.data_diversity import shift_reexpression


def oracle(x):
    return x * 7


class TestNvpHandlesDevelopmentFaults:
    def test_masks_minority_development_faults(self):
        versions = diverse_versions(oracle, 5, 0.15, seed=21)
        nvp = NVersionProgramming(versions)
        ok = 0
        for x in range(400):
            try:
                ok += nvp.execute(x) == oracle(x)
            except NoMajorityError:
                pass
        # Far better than the ~0.85 of a single version.
        assert ok / 400 > 0.95


class TestRecoveryBlocksHandleDevelopmentFaults:
    def test_alternate_masks_primary_bug(self):
        primary = Version("p", impl=oracle,
                          faults=[Bohrbug("p-bug",
                                          region=InputRegion(0, 500))])
        alternate = Version("alt", impl=oracle,
                            faults=[Bohrbug("alt-bug",
                                            region=InputRegion(500, 1000))])
        rb = RecoveryBlocks(
            [primary, alternate],
            PredicateAcceptanceTest(lambda args, v: v == oracle(args[0])))
        # Their failure regions are disjoint: together they cover all x.
        for x in (100, 700, 2000):
            assert rb.execute(x) == oracle(x)


class TestDataDiversityHandlesInputRegionBugs:
    def test_escapes_narrow_region(self):
        period = 100
        program = Version(
            "prog", impl=lambda x: (x % period) + 1,
            faults=[Bohrbug("narrow", region=InputRegion(40, 45))])
        dd = DataDiversity(program, [shift_reexpression(period)])
        for x in (42, 43, 44):
            assert dd.execute_retry(x) == (x % period) + 1


class TestRxFaultCoverage:
    """RX: 'works mainly with Heisenbugs, but can be effective also with
    some Bohrbugs and malicious faults'."""

    def _rx(self, fault, env):
        f = FaultyFunction(lambda x: x, faults=[fault])
        return EnvironmentPerturbation(lambda x, env=None: f(x, env=env),
                                       env)

    def test_handles_heisenbug(self):
        env = SimEnvironment(seed=8)
        rx = self._rx(Heisenbug("h", probability=0.9), env)
        assert rx.execute(1) == 1

    def test_handles_environment_sensitive_bohrbug(self):
        env = SimEnvironment(seed=8)
        rx = self._rx(OverflowBug("o", overflow_cells=4,
                                  trigger_modulo=1), env)
        assert rx.execute(1) == 1

    def test_does_not_handle_pure_bohrbug(self):
        env = SimEnvironment(seed=8)
        rx = self._rx(Bohrbug("b", region=InputRegion(0, 100)), env)
        with pytest.raises(AllAlternativesFailedError):
            rx.execute(1)


class TestCheckpointRecoveryFaultCoverage:
    """Checkpoint-recovery: 'effective in dealing with Heisenbugs ... but
    do not work well for Bohrbugs'."""

    def test_heisenbug_survived(self):
        env = SimEnvironment(seed=1)
        task = FaultyFunction(lambda: None,
                              faults=[Heisenbug("h", probability=0.5)])
        report = CheckpointRecovery(env, interval=2).run(
            [lambda e: task(env=e) for _ in range(20)])
        assert report.completed

    def test_bohrbug_not_survived(self):
        env = SimEnvironment(seed=1)
        task = FaultyFunction(lambda x: x,
                              faults=[Bohrbug("b",
                                              region=InputRegion(0, 10))])
        report = CheckpointRecovery(env, interval=1,
                                    max_rollbacks_per_step=5).run(
            [lambda e: task(3, env=e)])
        assert not report.completed


class TestProcessReplicasFaultCoverage:
    """Process replicas target malicious faults and are 'not well suited
    to deal with other types of faults' — a common-mode development crash
    passes through undetected-as-attack."""

    def test_attack_detected(self):
        replicas = ProcessReplicas(variants=3)
        with pytest.raises(AttackDetectedError):
            replicas.serve(absolute_address_attack())

    def test_benign_request_unharmed(self):
        replicas = ProcessReplicas(variants=3)
        assert replicas.serve(benign_request(1)) == 2

    def test_common_mode_development_fault_not_flagged_as_attack(self):
        replicas = ProcessReplicas(variants=2)
        # A malformed request whose garbage pointer is invalid in *every*
        # variant crashes them all identically: a common-mode failure,
        # not behavioural divergence, so no attack alarm is raised.
        malformed = (0, 0, 0, 0, 10 ** 9)
        verdict = replicas.serve_verdict(malformed)
        assert not verdict.attack_detected
        assert replicas.detections == 0
