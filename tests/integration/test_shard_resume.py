"""Integration: a SIGKILL'd sharded campaign resumes byte-identically.

The real failure mode the shard checkpoint store exists for is not a
polite ``--max-shards`` truncation but a process that dies mid-grid —
OOM kill, preempted spot instance, ctrl-C twice.  Here we run the real
CLI in a subprocess, SIGKILL it once the first shard checkpoints have
hit the log, resume with ``--resume``, and require the resumed report
to be byte-identical to an uninterrupted run of the same plan.

``PYTHONHASHSEED`` is varied across the kill, resume, and reference
runs so the identity cannot lean on accidental hash-order agreement.
"""

import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")

SHARDS = "8"
SEED = "5"
#: The killed run gets a deliberately heavy workload so there is a wide
#: window between the first checkpoint landing and the grid finishing.
KILL_REQUESTS = "2000"
KILL_DEADLINE = 120.0


def _command(requests, extra):
    return [sys.executable, "-m", "repro.cli", "campaign",
            "--requests", requests, "--seed", SEED,
            "--shards", SHARDS, "--format", "json"] + extra


def _run(requests, extra, hash_seed):
    env = dict(os.environ, PYTHONPATH=SRC, PYTHONHASHSEED=hash_seed)
    return subprocess.run(_command(requests, extra), env=env,
                          capture_output=True, text=True, timeout=300)


def _kill_mid_grid(store, extra, hash_seed):
    """Start a checkpointing run and SIGKILL it once the log shows the
    first shard record.  Returns True if the kill landed mid-run (a
    fast machine may finish first — then every shard is checkpointed
    and the resume-serves-everything path is what gets exercised)."""
    env = dict(os.environ, PYTHONPATH=SRC, PYTHONHASHSEED=hash_seed)
    proc = subprocess.Popen(
        _command(KILL_REQUESTS, ["--store", str(store)] + extra),
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    try:
        deadline = time.monotonic() + KILL_DEADLINE
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                return False
            if store.exists() and \
                    store.read_text(encoding="utf-8").count("\n") >= 2:
                proc.send_signal(signal.SIGKILL)
                proc.wait(timeout=30)
                return True
            time.sleep(0.01)
        raise AssertionError("no checkpoint appeared before deadline")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)


@pytest.mark.parametrize("extra", [
    pytest.param([], id="serial"),
    pytest.param(["--workers", "3", "--backend", "process"],
                 id="process"),
])
def test_sigkilled_campaign_resumes_byte_identical(tmp_path, extra):
    store = tmp_path / "checkpoints.jsonl"
    killed = _kill_mid_grid(store, extra, hash_seed="11")
    assert store.exists() and store.stat().st_size > 0

    resumed = _run(KILL_REQUESTS,
                   ["--store", str(store), "--resume"] + extra,
                   hash_seed="23")
    assert resumed.returncode == 0, resumed.stderr
    assert "shards:" in resumed.stderr
    if killed:
        # The kill landed mid-grid, so the resume both served
        # checkpoints and executed the remainder.
        assert "served=0" not in resumed.stderr

    reference = _run(KILL_REQUESTS, extra, hash_seed="37")
    assert reference.returncode == 0, reference.stderr
    assert resumed.stdout == reference.stdout


def test_torn_final_record_is_skipped_not_fatal(tmp_path):
    """SIGKILL can tear the last append mid-line; the store's replay
    must skip it and the resume must re-execute that shard."""
    store = tmp_path / "checkpoints.jsonl"
    first = _run("40", ["--store", str(store), "--max-shards", "2"],
                 hash_seed="11")
    assert first.returncode == 0, first.stderr
    raw = store.read_bytes()
    store.write_bytes(raw + b'{"schema": "repro-resul')  # torn tail

    resumed = _run("40", ["--store", str(store), "--resume"],
                   hash_seed="23")
    assert resumed.returncode == 0, resumed.stderr
    reference = _run("40", [], hash_seed="37")
    assert resumed.stdout == reference.stdout
